(* Arrival-process pacing for benchmark workers.

   Two modes live here. The original closed-loop pacer (type [t]) gates
   an issue loop: steady back-to-back issue, or bursts separated by idle
   gaps. The open-loop schedule (type [schedule]) is the service layer's
   generator: it produces the {e intended} arrival time of every request
   up front, independent of how fast the system absorbs them — when the
   system falls behind, requests queue (and their sojourn clocks keep
   running from the intended stamp), which is what makes the recorded
   latency coordinated-omission-safe.

   Short gaps are waited out on the monotonic clock with a yielding
   [Sync.Backoff] rather than either a raw spin (which starves the
   victim on oversubscribed hosts) or a sleep (whose scheduler rounding
   would swamp microsecond gaps). *)

type t = Steady | Bursty of { burst : int; pause_ns : int }

let to_string = function
  | Steady -> "steady"
  | Bursty { burst; pause_ns } ->
      Printf.sprintf "bursty-%dx%dus" burst (pause_ns / 1_000)

(* Backoff-wait until the monotonic clock reaches [deadline_ns]; returns
   immediately when the deadline is already past (the open-loop
   generator is behind — it must issue, not skip). *)
let wait_until_ns deadline_ns =
  if Sync.Mono.now_ns_int () < deadline_ns then begin
    let b = Sync.Backoff.create () in
    while Sync.Mono.now_ns_int () < deadline_ns do
      Sync.Backoff.once b
    done
  end

(* ------------------------- closed-loop pacer ------------------------- *)

(* Per-worker pacer state; one per worker thread, never shared. *)
type pacer = { arrival : t; mutable issued : int }

let pacer arrival =
  (match arrival with
  | Steady -> ()
  | Bursty { burst; pause_ns } ->
      if burst < 1 then invalid_arg "Arrival.pacer: burst must be >= 1";
      if pause_ns < 0 then invalid_arg "Arrival.pacer: pause_ns must be >= 0");
  { arrival; issued = 0 }

(* Call once per issued operation; waits out the idle gap when the burst
   is over. A zero gap (and a burst of 1 with a zero gap) is free. *)
let tick p =
  match p.arrival with
  | Steady -> ()
  | Bursty { burst; pause_ns } ->
      p.issued <- p.issued + 1;
      if p.issued >= burst then begin
        p.issued <- 0;
        if pause_ns > 0 then
          wait_until_ns (Sync.Mono.now_ns_int () + pause_ns)
      end

(* ------------------------- open-loop schedule ------------------------ *)

type process =
  | Periodic of { rate : float }
  | Poisson of { rate : float }
  | Burst of { rate : float; burst : int }

let check_rate ctx rate =
  if not (Float.is_finite rate) || rate <= 0.0 then
    invalid_arg (ctx ^ ": rate must be positive and finite")

let validate = function
  | Periodic { rate } -> check_rate "Arrival.Periodic" rate
  | Poisson { rate } -> check_rate "Arrival.Poisson" rate
  | Burst { rate; burst } ->
      check_rate "Arrival.Burst" rate;
      if burst < 1 then invalid_arg "Arrival.Burst: burst must be >= 1"

let process_to_string = function
  | Periodic { rate } -> Printf.sprintf "periodic-%.0f/s" rate
  | Poisson { rate } -> Printf.sprintf "poisson-%.0f/s" rate
  | Burst { rate; burst } -> Printf.sprintf "burst-%dx%.0f/s" burst rate

(* Nanoseconds per event at [rate] events/sec. Never divides by zero
   ([validate] bounds the rate away from it) and saturates to a zero gap
   at very high rates instead of going negative: arrivals then all carry
   the same intended stamp, the open-loop limit of infinite offered
   load. *)
let gap_ns ~rate ~scale =
  let g = scale /. rate *. 1e9 in
  if Float.is_finite g && g > 0.0 then int_of_float g else 0

type schedule = {
  process : process;
  rng : Rng.t;
  mutable next_ns : int; (* intended stamp of the next arrival *)
  mutable in_burst : int; (* arrivals left in the current burst *)
}

let schedule ?start_ns process ~rng =
  validate process;
  let start =
    match start_ns with Some s -> s | None -> Sync.Mono.now_ns_int ()
  in
  let in_burst = match process with Burst { burst; _ } -> burst | _ -> 0 in
  { process; rng; next_ns = start; in_burst }

(* Intended stamp of the next arrival; monotonically nondecreasing. *)
let next_arrival_ns s =
  let stamp = s.next_ns in
  (match s.process with
  | Periodic { rate } -> s.next_ns <- stamp + gap_ns ~rate ~scale:1.0
  | Poisson { rate } ->
      (* Exponential interarrival: -ln(1-u)/rate. [u] is in [0,1), so
         log1p (-u) is finite and the gap is >= 0; u = 0 gives a zero
         gap, the legitimate coincident-arrival case. *)
      let u = Rng.float s.rng in
      let g = -.Float.log1p (-.u) /. rate *. 1e9 in
      s.next_ns <- stamp + (if Float.is_finite g && g > 0.0 then int_of_float g else 0)
  | Burst { rate; burst } ->
      (* [burst] coincident arrivals, then one gap sized so the long-run
         rate is still [rate]: the gap covers the whole burst. *)
      s.in_burst <- s.in_burst - 1;
      if s.in_burst <= 0 then begin
        s.in_burst <- burst;
        s.next_ns <- stamp + gap_ns ~rate ~scale:(float_of_int burst)
      end);
  stamp

let wait_until = wait_until_ns
