(* Arrival-process pacing for benchmark workers: steady back-to-back
   issue, or bursts separated by idle gaps. Bursty arrivals are what an
   adaptive runtime has to survive — the contention level the controller
   tuned for keeps vanishing and returning — so the adapt benchmark
   sweeps both. The pause spins on the monotonic clock rather than
   sleeping: at microsecond scales the scheduler would round a sleep up
   by orders of magnitude. *)

type t = Steady | Bursty of { burst : int; pause_ns : int }

let to_string = function
  | Steady -> "steady"
  | Bursty { burst; pause_ns } ->
      Printf.sprintf "bursty-%dx%dus" burst (pause_ns / 1_000)

(* Per-worker pacer state; one per worker thread, never shared. *)
type pacer = { arrival : t; mutable issued : int }

let pacer arrival = { arrival; issued = 0 }

(* Call once per issued operation; blocks (spinning) when the burst is
   over and the gap begins. *)
let tick p =
  match p.arrival with
  | Steady -> ()
  | Bursty { burst; pause_ns } ->
      p.issued <- p.issued + 1;
      if p.issued >= burst then begin
        p.issued <- 0;
        let deadline = Sync.Mono.now_ns_int () + pause_ns in
        while Sync.Mono.now_ns_int () < deadline do
          Domain.cpu_relax ()
        done
      end
