(** The open-loop service layer: "production traffic" for the FL
    structures.

    A session model — a job queue ({!Fl.Weak_queue}) plus a session
    store ({!Fl.Shard_map} or the centralized {!Fl.Weak_map}) — driven
    by {!Arrival} open-loop schedules and guarded by an {!Overload}
    admission controller. Each worker draws the {e intended} arrival
    time of every request before issuing it; when the system falls
    behind, requests queue with their clocks already running, so the
    recorded sojourn (intended arrival → result forced) is
    coordinated-omission-safe. Offered load that the controller refuses
    takes the {!Futures.Future.Rejected} bounded-retry path and is
    counted as shed, never as latency.

    Chaos composes: [run] threads its [?chaos]/[?plan]/[?watchdog]
    straight into {!Runner.run}, so seeded victims and scripted kills
    at the [service.admit]/[service.shed]/[service.degrade] (and any
    structure) fault points kill real workers mid-overload; abandon
    hooks poison their windows and the run still terminates. *)

type backend = Central | Sharded

val backend_name : backend -> string

type config = {
  workers : int;
  requests_per_worker : int;
  process : Arrival.process;  (** per-worker arrival process *)
  backend : backend;
  slack : int;  (** per-worker pending-window bound *)
  buckets : int;  (** shard count for the [Sharded] backend *)
  lease_s : float;
      (** [Sharded] bucket-ownership lease. Short by default (5 ms):
          a quiet owner stalls other workers' ops for up to one lease,
          so long leases feed straight into the sojourn tail. *)
  grant_timeout_s : float;  (** initial grant patience, doubled on retry *)
  key_range : int;
  seed : int;
  retry_attempts : int;  (** bounded-retry attempts per shed request *)
  queue_drain : int;  (** dequeue this many jobs every [queue_drain] requests *)
  overload : Overload.config;
  epoch_s : float;  (** controller epoch *)
}

val default_config : config

type result = {
  offered : int;  (** admission decisions, retries included *)
  admitted : int;  (** requests accepted (after retries) *)
  shed : int;  (** requests whose final fate was [Rejected] *)
  completed : int;  (** admitted ops whose result was forced *)
  failed : int;  (** admitted ops cancelled/poisoned (chaos) *)
  degraded_writes : int;  (** writes refused while the store was degraded *)
  retries : int;  (** resubmissions attempted by the retry path *)
  max_stage : Overload.stage;  (** deepest stage any worker observed *)
  final_stage : Overload.stage;
  escalations : int;
  recoveries : int;
  controller_epochs : int;
  sojourn : Obs.Histogram.s;
      (** per-request sojourn (intended arrival → forced), ns *)
  measurement : Runner.measurement;  (** killed/recovered/poisoned etc. *)
}

val sojourn_p : result -> float -> int
(** [sojourn_p r 99.9] — nearest-rank percentile of the sojourn
    histogram, ns. *)

val shed_rate : result -> float
(** sheds / offered; [0.] when nothing was offered. *)

val run :
  ?plan:Faults.plan_step list ->
  ?chaos:Runner.chaos ->
  ?watchdog:float ->
  ?repeats:int ->
  config ->
  result
(** Run the service: start the controller, drive [workers] open-loop
    domains for [requests_per_worker] requests each (via {!Runner.run},
    which handles kills, watchdog recovery and teardown), stop the
    controller, and report. Counters accumulate over [repeats] (default
    1); structures are fresh per repeat. Raises [Invalid_argument] on
    non-positive sizes. *)
