(** Plain-text table rendering for benchmark output.

    The bench harness prints one table per figure panel, in the shape of
    the paper's plots: rows are thread counts, columns are
    implementations, cells are completion times. *)

type t

val create : title:string -> columns:string list -> t
(** [columns] are the headers after the leading "threads" column. *)

val add_row : t -> label:string -> cells:string list -> unit
(** Raises [Invalid_argument] if the cell count differs from [columns]. *)

val seconds : float -> string
(** Render a duration compactly ("1.23s", "45.6ms", "789us"). *)

val print : Format.formatter -> t -> unit
(** Aligned columns, title first. *)

val csv : Format.formatter -> t -> unit
(** The same table as CSV (for external plotting). *)
