(** Backpressure and admission control for the open-loop service layer.

    A controller that watches force-latency p99, queue pendingness and
    the open-loop service sojourn from {!Obs.Metrics} diffs (the same
    epoch machinery as {!Tune.Controller}) and walks a four-stage
    ladder as overload sets in, recovering stage by stage — with
    hysteresis — when every tail falls back under budget:

    {v
      Admit ──hot──> Squeeze ──hot──> Shed ──hot──> Degrade
        ^              |                |              |
        +«── calm ─────+«──── calm ─────+«──── calm ───+
    v}

    - {b Admit}: every request accepted, structures run as tuned.
    - {b Squeeze}: per-handle slack windows are shrunk to
      [squeeze_slack] — smaller pending windows trade batching for
      latency before anything is refused.
    - {b Shed}: a ramping fraction of {e new} arrivals is refused with
      the {!Futures.Future.Rejected} fate (never [Cancelled]/[Broken]:
      a shed op was never accepted, so clients may resubmit via
      {!Futures.Future.retry}). Each further hot epoch doubles the shed
      fraction toward [shed_ceiling].
    - {b Degrade}: session-store writes are refused too
      ({!writes_degraded}); reads are still admitted and the sharded
      store's read-only degraded mode keeps serving them.

    Escalation is immediate (one stage per hot epoch — overload must be
    answered now); de-escalation takes [hysteresis] consecutive calm
    epochs per stage, so a borderline system does not flap.

    Fault points: [service.admit] fires on every admission decision,
    [service.shed] on every refusal, [service.degrade] on the
    transition into Degrade, and [service.epoch] at the top of every
    background epoch — so chaos schedules can delay or kill the
    controller at each; a dead controller leaves the last-good stage in
    place and the service keeps running. *)

type stage = Admit | Squeeze | Shed | Degrade

val stage_index : stage -> int
(** Admit = 0 … Degrade = 3 (the [Obs] service-stage encoding). *)

val stage_name : stage -> string

type config = {
  min_ops : int;
      (** epochs observing fewer created futures {e and} fewer service
          completions are idle *)
  p99_budget_ns : int;  (** hot when force p99 exceeds this *)
  pending_budget_ns : int;  (** … or pendingness p99 exceeds this *)
  sojourn_budget_ns : int;
      (** … or the service sojourn p99 exceeds this. The open-loop
          signal: a generator that has fallen behind still forces each
          future quickly — only the intended-arrival→forced sojourn
          exposes the backlog *)
  recover_fraction : float;
      (** calm when both signals are under [fraction × budget] *)
  hysteresis : int;  (** consecutive calm epochs per de-escalation *)
  squeeze_slack : int;  (** slack bound while at Squeeze or beyond *)
  shed_floor : int;  (** percent of arrivals shed on entering Shed *)
  shed_ceiling : int;  (** shed percent cap; Degrade sheds at the cap *)
}

val default : config

type t

val create : ?cfg:config -> ?epoch:float -> unit -> t
(** [epoch] (default 5 ms) is the background control period. Raises
    [Invalid_argument] if [epoch <= 0] or the config is malformed
    (budgets or slack < 1, shed percents outside [0..100] or
    [floor > ceiling], [hysteresis < 1], [recover_fraction] outside
    (0..1]). *)

val register_slack : t -> Fl.Slack.t -> unit
(** Put a worker's slack window under the controller's control: shrunk
    to [squeeze_slack] at Squeeze and beyond, restored to its
    registration-time bound on full recovery. Safe from any domain. *)

val admit : t -> bool
(** One admission decision ([false] = shed this arrival). Fires
    [service.admit] (always) and [service.shed] (on refusal) fault
    points — an injected [Faults.Killed] propagates to the caller like
    any worker death. Counted exactly in {!offered}/{!sheds} and
    mirrored into [Obs]. *)

val writes_degraded : t -> bool
(** True at Degrade: refuse session-store writes, serve reads. *)

val stage : t -> stage
val shed_percent : t -> int

val step : t -> unit
(** One control epoch (diff metrics, walk the ladder). Public so tests
    and the fuzzer drive the ladder without the background domain;
    [start]/[stop] run it periodically. *)

val force_stage : t -> stage -> unit
(** Jump the ladder directly (applying each transition's actions), for
    tests and the fuzzer's synthetic overload schedules. *)

val start : t -> unit
(** Spawn the background epoch domain (enables [Obs] if needed — the
    controller is a telemetry consumer). Raises [Invalid_argument] if
    already running. *)

val stop : t -> unit
(** Stop and join the background domain; restores the [Obs] switch.
    The current stage and slack settings are left in place. *)

val running : t -> bool

(** {2 Counters} *)

val offered : t -> int
val sheds : t -> int
val escalations : t -> int
val recoveries : t -> int
val epochs : t -> int
val errors : t -> int
