let check_non_empty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty sample array")

let mean xs =
  check_non_empty "Stats.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let std_dev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let sum_sq =
      Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
    in
    sqrt (sum_sq /. float_of_int (n - 1))
  end

let min xs =
  check_non_empty "Stats.min" xs;
  Array.fold_left Stdlib.min xs.(0) xs

let max xs =
  check_non_empty "Stats.max" xs;
  Array.fold_left Stdlib.max xs.(0) xs

let percentile xs p =
  check_non_empty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then
    invalid_arg "Stats.percentile: p out of [0, 100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank =
    int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1
  in
  sorted.(Stdlib.max 0 (Stdlib.min (n - 1) rank))

let median xs = percentile xs 50.0
