(* The percentile math itself lives in [Obs.Histogram] — one nearest-rank
   definition shared by the benchmark tables and the observability
   subsystem — and this module keeps its historical name for the
   reporting code. *)
include Obs.Histogram
