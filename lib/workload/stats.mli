(** Small statistics helpers for benchmark reporting. *)

val mean : float array -> float
(** Raises [Invalid_argument] on an empty array. *)

val std_dev : float array -> float
(** Sample standard deviation (n-1 denominator); [0.] for fewer than two
    samples. *)

val min : float array -> float
val max : float array -> float

val median : float array -> float
(** Does not modify its argument. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0, 100], nearest-rank on the sorted
    samples. Raises [Invalid_argument] if [p] is out of range or [xs] is
    empty. *)
