(* Benchmark harness regenerating the evaluation of Kogan & Herlihy,
   "The Future(s) of Shared Data Structures" (PODC 2014), Section 5.

   One panel per (figure, slack) pair, matching the paper's plots:
   rows are thread counts, columns are the four implementations
   (lock-free baseline, weak-, medium- and strong-FL), cells are the time
   for all threads to complete their operations; the ratio in parentheses
   is the speedup of that implementation over the lock-free baseline
   (paper shape: >1 means the futures version wins).

   Subcommands:
     fig4 | fig5 | fig6   one figure (stack / queue / linked list)
     ablation             DESIGN.md ablations A-D
     micro                Bechamel single-op costs at slack 1 (paper §5.1)
     cas                  weak-queue CAS-per-op correlation (paper §5.2)
     extra                extension workloads (Zipf keys, asymmetric mix)
     shard                sharded FL store: perf vs the centralized map,
                          plus scripted kills at each transfer step
     chaos                seeded fault injection + recovery counters
     trace                cross-domain probe for the flight recorder
     service              open-loop service layer: saturation sweep over
                          offered load x backends, plus overload chaos
                          (bursty arrivals, scripted kills mid-overload)
     conformance          online-conformance panel: Lin.Stream monitor
                          throughput and the service sweep's sampling
                          overhead (10% gate under --assert-service)
     all                  everything above (minus chaos and trace)
   Options:
     --quick              small sizes for a fast smoke run
     --full               the paper's 100K ops per thread
     --ops N --repeats N --threads a,b,c --slacks a,b,c --csv
     --obs                turn the observability subsystem on (same as
                          FLDS_OBS=1); adds an "obs" block to --json
     --trace PATH         implies --obs; at exit export the flight
                          recorder to PATH as Chrome trace_event JSON
     --conformance-stride N
                          implies --obs; record completed-op events for
                          values with residue 0 mod N (same as
                          FLDS_OBS_CONFORMANCE=1/N) *)

module Future = Futures.Future
module R = Fl.Registry

type config = {
  threads : int list;
  slacks : int list;
  ops : int;
  repeats : int;
  csv : bool;
}

let default_config =
  {
    threads = [ 1; 2; 4; 8 ];
    slacks = [ 1; 10; 20; 100 ];
    ops = 20_000;
    repeats = 3;
    csv = false;
  }

(* --------------------------- JSON output ----------------------------- *)

(* Machine-readable sink for CI and results/: every measurement taken
   while [--json PATH] is set is also appended here and written as one
   JSON document at exit. Hand-rolled: the records are flat and the repo
   deliberately has no JSON dependency. *)

let json_path : string option ref = ref None
let json_records : string list ref = ref []

(* Observability: [--obs] flips the runtime switch (equivalent to
   FLDS_OBS=1); [--trace PATH] additionally exports the flight recorder
   at exit. Both work with every subcommand, chaos included. *)
let trace_path : string option ref = ref None

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_num x =
  if Float.is_finite x then Printf.sprintf "%.6g" x else "null"

let record ~bench ~impl ~slack ~domains fields =
  if !json_path <> None then begin
    let extras =
      List.map (fun (k, v) -> Printf.sprintf ",%S:%s" k (json_num v)) fields
    in
    json_records :=
      Printf.sprintf "{\"bench\":\"%s\",\"impl\":\"%s\",\"slack\":%d,\"domains\":%d%s}"
        (json_escape bench) (json_escape impl) slack domains
        (String.concat "" extras)
      :: !json_records
  end

let record_measurement ~bench ~impl ~slack (m : Workload.Runner.measurement) =
  record ~bench ~impl ~slack ~domains:m.Workload.Runner.threads
    [
      ("seconds", m.Workload.Runner.seconds);
      ("ops_per_s", m.Workload.Runner.throughput);
      ("cas_per_op", m.Workload.Runner.cas_per_op);
      ("minor_words_per_op", m.Workload.Runner.minor_words_per_op);
    ]

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
    let rev = try input_line ic with End_of_file -> "unknown" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 -> rev
    | _ -> "unknown"
  with _ -> "unknown"

(* When the recorder is on, the JSON document also carries an "obs"
   block: the optimization-telemetry summary (pendingness and force
   percentiles, splice batch size, elimination hit rate, lease and
   recovery counters) accumulated over the whole process run. *)
let obs_json_block () =
  if not (Obs.enabled ()) then ""
  else begin
    let s = Obs.Metrics.snapshot () in
    let i k v = Printf.sprintf "\"%s\": %d" k v in
    let f k v = Printf.sprintf "\"%s\": %s" k (json_num v) in
    let fields =
      [
        i "futures_created" s.Obs.Metrics.futures_created;
        i "futures_fulfilled" s.Obs.Metrics.futures_fulfilled;
        i "futures_forced" s.Obs.Metrics.futures_forced;
        i "futures_cancelled" s.Obs.Metrics.futures_cancelled;
        i "futures_poisoned" s.Obs.Metrics.futures_poisoned;
        i "futures_rejected" s.Obs.Metrics.futures_rejected;
        i "pendingness_p50_ns" (Obs.Metrics.pendingness_p50 s);
        i "pendingness_p99_ns" (Obs.Metrics.pendingness_p99 s);
        i "pendingness_p999_ns" (Obs.Metrics.pendingness_p999 s);
        i "force_p50_ns" (Obs.Metrics.force_p50 s);
        i "force_p99_ns" (Obs.Metrics.force_p99 s);
        i "force_p999_ns" (Obs.Metrics.force_p999 s);
        i "transfer_p999_ns" (Obs.Metrics.transfer_p999 s);
        i "splices" s.Obs.Metrics.splices;
        i "splice_ops" s.Obs.Metrics.splice_ops;
        f "mean_splice_batch" (Obs.Metrics.mean_splice_batch s);
        i "elim_hits" s.Obs.Metrics.elim_hits;
        i "elim_misses" s.Obs.Metrics.elim_misses;
        f "elim_hit_rate" (Obs.Metrics.elim_hit_rate s);
        i "elim_wait_p99_ns" (Obs.Metrics.elim_wait_p99 s);
        i "elim_wait_p999_ns" (Obs.Metrics.elim_wait_p999 s);
        i "combiner_acquires" s.Obs.Metrics.combiner_acquires;
        i "combiner_takeovers" s.Obs.Metrics.combiner_takeovers;
        i "combiner_retires" s.Obs.Metrics.combiner_retires;
        i "backoff_exhausted" s.Obs.Metrics.backoff_exhausted;
        i "workers_killed" s.Obs.Metrics.workers_killed;
        i "workers_recovered" s.Obs.Metrics.workers_recovered;
        i "workers_stalled" s.Obs.Metrics.workers_stalled;
        i "shard_degraded_finds" s.Obs.Metrics.shard_degraded_finds;
        i "service_admitted" s.Obs.Metrics.service_admitted;
        i "service_shed" s.Obs.Metrics.service_shed;
        i "service_degrades" s.Obs.Metrics.service_degrades;
        i "service_p50_ns" (Obs.Metrics.service_p50 s);
        i "service_p99_ns" (Obs.Metrics.service_p99 s);
        i "service_p999_ns" (Obs.Metrics.service_p999 s);
      ]
    in
    Printf.sprintf ",\n  \"obs\": {\n    %s\n  }"
      (String.concat ",\n    " fields)
  end

let write_json () =
  match !json_path with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Printf.fprintf oc
        "{\n  \"generated_by\": \"bench/main.exe\",\n  \"git_rev\": \"%s\",\n\
        \  \"records\": [\n    %s\n  ]%s\n}\n"
        (json_escape (git_rev ()))
        (String.concat ",\n    " (List.rev !json_records))
        (obs_json_block ());
      close_out oc;
      Printf.eprintf "wrote %s (%d records)\n%!" path
        (List.length !json_records)

let write_trace () =
  match !trace_path with
  | None -> ()
  | Some path ->
      let n = Obs.Trace.export_file path in
      Printf.eprintf "wrote %s (%d events, %d dropped)\n%!" path n
        (Obs.Trace.dropped ())

let quick_config =
  { default_config with threads = [ 1; 2; 4 ]; ops = 2_000; repeats = 1 }

let full_config = { default_config with ops = 100_000; repeats = 10 }

(* ------------------------- worker builders ------------------------- *)

let stack_worker ?order ~slack inst ~thread ~ops =
  let o = inst.R.s_handle () in
  let rng = Workload.Rng.create ~seed:(0xBEEF + slack) ~stream:thread in
  let sl = Fl.Slack.create ?order slack in
  for _ = 1 to ops do
    match Workload.Distribution.stack_op rng with
    | Workload.Distribution.Push v ->
        let f = o.R.s_push v in
        Fl.Slack.note sl (fun () -> Future.force f)
    | Workload.Distribution.Pop ->
        let f = o.R.s_pop () in
        Fl.Slack.note sl (fun () -> ignore (Future.force f))
  done;
  Fl.Slack.drain sl;
  o.R.s_flush ()

let queue_worker ?order ~slack inst ~thread ~ops =
  let o = inst.R.q_handle () in
  let rng = Workload.Rng.create ~seed:(0xF00D + slack) ~stream:thread in
  let sl = Fl.Slack.create ?order slack in
  for _ = 1 to ops do
    match Workload.Distribution.queue_op rng with
    | Workload.Distribution.Enq v ->
        let f = o.R.q_enq v in
        Fl.Slack.note sl (fun () -> Future.force f)
    | Workload.Distribution.Deq ->
        let f = o.R.q_deq () in
        Fl.Slack.note sl (fun () -> ignore (Future.force f))
  done;
  Fl.Slack.drain sl;
  o.R.q_flush ()

let key_range = Workload.Distribution.default_key_range

let prefill_set inst =
  let o = inst.R.l_handle () in
  (* Ascending insertion order gives every implementation the same node
     layout; otherwise the combining implementations' bulk prefill would
     hand them a cache-locality head start before measurement begins. *)
  let keys =
    List.sort compare
      (Workload.Distribution.initial_keys ~key_range ~seed:2014 ())
  in
  let fs = List.map (fun k -> o.R.l_insert k) keys in
  o.R.l_flush ();
  inst.R.l_drain ();
  List.iter (fun f -> ignore (Future.force f)) fs;
  inst

let set_worker ?order ~slack inst ~thread ~ops =
  let o = inst.R.l_handle () in
  let rng = Workload.Rng.create ~seed:(0xCAFE + slack) ~stream:thread in
  let sl = Fl.Slack.create ?order slack in
  for _ = 1 to ops do
    match Workload.Distribution.list_op ~key_range rng with
    | Workload.Distribution.Insert k ->
        let f = o.R.l_insert k in
        Fl.Slack.note sl (fun () -> ignore (Future.force f))
    | Workload.Distribution.Remove k ->
        let f = o.R.l_remove k in
        Fl.Slack.note sl (fun () -> ignore (Future.force f))
    | Workload.Distribution.Contains k ->
        let f = o.R.l_contains k in
        Fl.Slack.note sl (fun () -> ignore (Future.force f))
  done;
  Fl.Slack.drain sl;
  o.R.l_flush ()

(* --------------------------- panel runner --------------------------- *)

type column = {
  name : string;
  measure : slack:int -> threads:int -> Workload.Runner.measurement;
}

let stack_column ?order ?label cfg (impl : R.stack_impl) =
  {
    name = Option.value label ~default:impl.s_name;
    measure =
      (fun ~slack ~threads ->
        Workload.Runner.run ~threads ~repeats:cfg.repeats
          ~ops_per_thread:cfg.ops ~setup:impl.s_make
          ~worker:(stack_worker ?order ~slack)
          ~cas_total:(fun i -> i.R.s_cas_count ())
          ~teardown:(fun i -> i.R.s_drain ())
          ());
  }

let queue_column ?order ?label cfg (impl : R.queue_impl) =
  {
    name = Option.value label ~default:impl.q_name;
    measure =
      (fun ~slack ~threads ->
        Workload.Runner.run ~threads ~repeats:cfg.repeats
          ~ops_per_thread:cfg.ops ~setup:impl.q_make
          ~worker:(queue_worker ?order ~slack)
          ~cas_total:(fun i -> i.R.q_cas_count ())
          ~teardown:(fun i -> i.R.q_drain ())
          ());
  }

let set_column ?order ?label cfg (impl : R.set_impl) =
  {
    name = Option.value label ~default:impl.l_name;
    measure =
      (fun ~slack ~threads ->
        Workload.Runner.run ~threads ~repeats:cfg.repeats
          ~ops_per_thread:cfg.ops
          ~setup:(fun () -> prefill_set (impl.l_make ()))
          ~worker:(set_worker ?order ~slack)
          ~cas_total:(fun i -> i.R.l_cas_count ())
          ~teardown:(fun i -> i.R.l_drain ())
          ());
  }

(* Run one panel (fixed slack): rows = thread counts, columns = impls.
   Cells show completion time, with speedup vs the first (baseline)
   column in parentheses. *)
let run_panel ?bench cfg ~title columns ~slack =
  let table =
    Workload.Report.create ~title
      ~columns:(List.map (fun c -> c.name) columns)
  in
  List.iter
    (fun threads ->
      let ms = List.map (fun c -> c.measure ~slack ~threads) columns in
      (match bench with
      | Some bench ->
          List.iter2
            (fun c m -> record_measurement ~bench ~impl:c.name ~slack m)
            columns ms
      | None -> ());
      let baseline =
        match ms with m :: _ -> m.Workload.Runner.seconds | [] -> nan
      in
      let cells =
        List.mapi
          (fun i m ->
            let t = m.Workload.Runner.seconds in
            if i = 0 then Workload.Report.seconds t
            else
              Printf.sprintf "%s (x%.2f)" (Workload.Report.seconds t)
                (baseline /. t))
          ms
      in
      Workload.Report.add_row table
        ~label:(string_of_int threads)
        ~cells)
    cfg.threads;
  let ppf = Format.std_formatter in
  if cfg.csv then Workload.Report.csv ppf table
  else Workload.Report.print ppf table;
  Format.pp_print_newline ppf ()

let run_figure ?bench cfg ~figure ~what columns =
  Format.printf "== %s: %s — %d ops/thread, %d repeat(s) ==@.@." figure what
    cfg.ops cfg.repeats;
  List.iter
    (fun slack ->
      run_panel ?bench cfg
        ~title:(Printf.sprintf "%s, slack=%d (time; x = speedup vs lockfree)"
                  figure slack)
        columns ~slack)
    cfg.slacks

let fig4 cfg =
  run_figure ~bench:"fig4" cfg ~figure:"Figure 4"
    ~what:"stacks, 50% push / 50% pop"
    (List.map (stack_column cfg) R.stack_impls)

let fig5 cfg =
  run_figure ~bench:"fig5" cfg ~figure:"Figure 5"
    ~what:"queues, 50% enq / 50% deq"
    (List.map (queue_column cfg) R.queue_impls)

let fig6 cfg =
  (* List operations cost a traversal of ~2500 nodes each; scale the op
     count down so the figure completes in minutes on a small host. The
     relative shape is unaffected (every implementation pays the same
     scale). Use --ops to override. *)
  let cfg = { cfg with ops = max 500 (cfg.ops / 10) } in
  run_figure ~bench:"fig6" cfg ~figure:"Figure 6"
    ~what:
      "linked lists, 20% ins / 20% rem / 60% ctn, 10K keys, half full \
       (ops scaled /10)"
    (List.map (set_column cfg) R.set_impls)

(* ----------------------------- ablations ---------------------------- *)

let ablation cfg =
  Format.printf "== Ablations (DESIGN.md A-D) — %d ops/thread ==@.@." cfg.ops;
  let cfg = { cfg with slacks = List.filter (fun s -> s > 1) cfg.slacks } in
  let cfg = if cfg.slacks = [] then { cfg with slacks = [ 20 ] } else cfg in
  (* A: weak stack elimination on/off *)
  let stack_cols =
    [
      stack_column cfg (R.find_stack "weak");
      stack_column cfg
        { s_name = "weak-noelim";
          s_make = (fun () -> R.weak_stack_with ~elimination:false ());
        };
    ]
  in
  (* Reuse the panel runner: baseline column = elimination on. *)
  List.iter
    (fun slack ->
      run_panel cfg
        ~title:
          (Printf.sprintf
             "Ablation A: weak stack elimination (slack=%d; x<1 means \
              disabling hurts)"
             slack)
        stack_cols ~slack)
    cfg.slacks;
  (* List ablations use the same /10 op scaling as Figure 6. *)
  let cfg_list = { cfg with ops = max 500 (cfg.ops / 10) } in
  (* B: medium list search-resume hint on/off *)
  let list_cols_b =
    [
      set_column cfg_list (R.find_set "medium");
      set_column cfg_list
        { l_name = "medium-nohint";
          l_make = (fun () -> R.medium_set_with ~resume_hint:false);
        };
    ]
  in
  List.iter
    (fun slack ->
      run_panel cfg_list
        ~title:
          (Printf.sprintf "Ablation B: medium list search resume (slack=%d)"
             slack)
        list_cols_b ~slack)
    cfg_list.slacks;
  (* C: strong list batch sorting on/off *)
  let list_cols_c =
    [
      set_column cfg_list (R.find_set "strong");
      set_column cfg_list
        { l_name = "strong-nosort";
          l_make = (fun () -> R.strong_set_with ~sort_batch:false);
        };
    ]
  in
  List.iter
    (fun slack ->
      run_panel cfg_list
        ~title:
          (Printf.sprintf "Ablation C: strong list batch sort (slack=%d)"
             slack)
        list_cols_c ~slack)
    cfg_list.slacks;
  (* D: slack evaluation order. Forcing the newest future first lets one
     evaluation flush the whole window; oldest-first degrades every
     evaluation to a single operation (see Fl.Slack). Shown on the two
     structures whose evaluation stops at the forced future. *)
  let queue_cols_d =
    [
      queue_column cfg (R.find_queue "medium");
      queue_column cfg ~order:Fl.Slack.Oldest_first ~label:"medium-oldest"
        (R.find_queue "medium");
    ]
  in
  List.iter
    (fun slack ->
      run_panel cfg
        ~title:
          (Printf.sprintf
             "Ablation D: medium queue, slack evaluation order (slack=%d)"
             slack)
        queue_cols_d ~slack)
    cfg.slacks;
  let list_cols_d =
    [
      set_column cfg_list (R.find_set "medium");
      set_column cfg_list ~order:Fl.Slack.Oldest_first ~label:"medium-oldest"
        (R.find_set "medium");
    ]
  in
  List.iter
    (fun slack ->
      run_panel cfg_list
        ~title:
          (Printf.sprintf
             "Ablation D: medium list, slack evaluation order (slack=%d)"
             slack)
        list_cols_d ~slack)
    cfg_list.slacks

(* ------------------------- CAS correlation -------------------------- *)

(* The paper validates the weak queue's running-time spike by correlating
   it with the average number of CAS operations per high-level operation
   (§5.2). This prints time and CAS/op side by side. *)
let cas_experiment cfg =
  Format.printf
    "== CAS correlation: weak-FL queue (paper §5.2) — %d ops/thread ==@.@."
    cfg.ops;
  let impl = R.find_queue "weak" in
  List.iter
    (fun slack ->
      let table =
        Workload.Report.create
          ~title:(Printf.sprintf "weak queue, slack=%d" slack)
          ~columns:[ "time"; "cas/op" ]
      in
      List.iter
        (fun threads ->
          let m = (queue_column cfg impl).measure ~slack ~threads in
          Workload.Report.add_row table
            ~label:(string_of_int threads)
            ~cells:
              [
                Workload.Report.seconds m.Workload.Runner.seconds;
                Printf.sprintf "%.2f" m.Workload.Runner.cas_per_op;
              ])
        cfg.threads;
      Workload.Report.print Format.std_formatter table;
      Format.print_newline ())
    cfg.slacks

(* ------------------------ extension workloads ----------------------- *)

(* Workloads beyond the paper's evaluation: Zipf-skewed keys (combining
   gets more same-key hits) and an asymmetric queue mix. *)

let zipf_set_worker ~slack inst ~thread ~ops =
  let o = inst.R.l_handle () in
  let rng = Workload.Rng.create ~seed:(0xD00D + slack) ~stream:thread in
  let z = Workload.Distribution.zipf ~n:key_range () in
  let sl = Fl.Slack.create slack in
  for _ = 1 to ops do
    let note f = Fl.Slack.note sl (fun () -> ignore (Future.force f)) in
    match Workload.Distribution.list_op_skewed z rng with
    | Workload.Distribution.Insert k -> note (o.R.l_insert k)
    | Workload.Distribution.Remove k -> note (o.R.l_remove k)
    | Workload.Distribution.Contains k -> note (o.R.l_contains k)
  done;
  Fl.Slack.drain sl;
  o.R.l_flush ()

let zipf_set_column cfg (impl : R.set_impl) =
  {
    name = impl.l_name;
    measure =
      (fun ~slack ~threads ->
        Workload.Runner.run ~threads ~repeats:cfg.repeats
          ~ops_per_thread:cfg.ops
          ~setup:(fun () -> prefill_set (impl.l_make ()))
          ~worker:(zipf_set_worker ~slack)
          ~cas_total:(fun i -> i.R.l_cas_count ())
          ~teardown:(fun i -> i.R.l_drain ())
          ());
  }

let asymmetric_queue_worker ~slack inst ~thread ~ops =
  let o = inst.R.q_handle () in
  let rng = Workload.Rng.create ~seed:(0xA5A5 + slack) ~stream:thread in
  let sl = Fl.Slack.create slack in
  for _ = 1 to ops do
    (* 80% enqueue / 20% dequeue: long same-type runs, the best case for
       run combining. *)
    if Workload.Rng.below rng 5 < 4 then begin
      let f = o.R.q_enq (Workload.Rng.below rng 1_000_000) in
      Fl.Slack.note sl (fun () -> Future.force f)
    end
    else
      let f = o.R.q_deq () in
      Fl.Slack.note sl (fun () -> ignore (Future.force f))
  done;
  Fl.Slack.drain sl;
  o.R.q_flush ()

let asymmetric_queue_column cfg (impl : R.queue_impl) =
  {
    name = impl.q_name;
    measure =
      (fun ~slack ~threads ->
        Workload.Runner.run ~threads ~repeats:cfg.repeats
          ~ops_per_thread:cfg.ops ~setup:impl.q_make
          ~worker:(asymmetric_queue_worker ~slack)
          ~cas_total:(fun i -> i.R.q_cas_count ())
          ~teardown:(fun i -> i.R.q_drain ())
          ());
  }

let extra cfg =
  let cfg_list = { cfg with ops = max 500 (cfg.ops / 10) } in
  Format.printf
    "== Extension: Zipf-skewed linked lists (exponent 1.0) — %d ops/thread      ==@.@."
    cfg_list.ops;
  List.iter
    (fun slack ->
      run_panel cfg_list
        ~title:(Printf.sprintf "Zipf list, slack=%d" slack)
        (List.map (zipf_set_column cfg_list) R.set_impls)
        ~slack)
    cfg_list.slacks;
  Format.printf
    "== Extension: asymmetric queue (80%% enq / 20%% deq) — %d ops/thread      ==@.@."
    cfg.ops;
  List.iter
    (fun slack ->
      run_panel cfg
        ~title:(Printf.sprintf "asymmetric queue, slack=%d" slack)
        (List.map (asymmetric_queue_column cfg) R.queue_impls)
        ~slack)
    cfg.slacks

(* --------------------------- micro (§5.1) --------------------------- *)

(* Minor-allocation probe: words allocated per operation on the
   weak/medium stack & queue flush paths — a window of [alloc_window]
   pending operations, then one flush. This is the metric the
   ring-buffer pending windows target: the per-op cost must cover only
   the future and the spliced shared-structure node, not any transient
   window bookkeeping. *)
let alloc_window = 64
let alloc_iters = 2_000

let micro_alloc () =
  Format.printf
    "== Micro: minor words/op, window=%d pending ops then flush ==@.@."
    alloc_window;
  let measure name f =
    for _ = 1 to 10 do f () done;
    Gc.full_major ();
    let before = Gc.minor_words () in
    for _ = 1 to alloc_iters do f () done;
    let words = Gc.minor_words () -. before in
    let per_op = words /. float_of_int (alloc_iters * alloc_window) in
    Format.printf "  %-28s %8.1f minor words/op@." name per_op;
    record ~bench:"micro-alloc" ~impl:name ~slack:alloc_window ~domains:1
      [ ("minor_words_per_op", per_op) ]
  in
  let weak_stack () =
    let s = Fl.Weak_stack.create ~elimination:false () in
    let h = Fl.Weak_stack.handle s in
    measure "weak-stack push+flush" (fun () ->
        for i = 1 to alloc_window do ignore (Fl.Weak_stack.push h i) done;
        Fl.Weak_stack.flush h);
    measure "weak-stack pop+flush" (fun () ->
        for _ = 1 to alloc_window do ignore (Fl.Weak_stack.pop h) done;
        Fl.Weak_stack.flush h)
  in
  let weak_queue () =
    let q = Fl.Weak_queue.create () in
    let h = Fl.Weak_queue.handle q in
    measure "weak-queue enq+flush" (fun () ->
        for i = 1 to alloc_window do ignore (Fl.Weak_queue.enqueue h i) done;
        Fl.Weak_queue.flush h);
    measure "weak-queue deq+flush" (fun () ->
        for _ = 1 to alloc_window do ignore (Fl.Weak_queue.dequeue h) done;
        Fl.Weak_queue.flush h)
  in
  let medium_stack () =
    let s = Fl.Medium_stack.create () in
    let h = Fl.Medium_stack.handle s in
    measure "medium-stack push+flush" (fun () ->
        for i = 1 to alloc_window do ignore (Fl.Medium_stack.push h i) done;
        Fl.Medium_stack.flush h);
    measure "medium-stack mixed+flush" (fun () ->
        for i = 1 to alloc_window / 2 do
          ignore (Fl.Medium_stack.push h i);
          ignore (Fl.Medium_stack.pop h)
        done;
        Fl.Medium_stack.flush h)
  in
  let medium_queue () =
    let q = Fl.Medium_queue.create () in
    let h = Fl.Medium_queue.handle q in
    measure "medium-queue enq+flush" (fun () ->
        for i = 1 to alloc_window do ignore (Fl.Medium_queue.enqueue h i) done;
        Fl.Medium_queue.flush h);
    measure "medium-queue deq+flush" (fun () ->
        for _ = 1 to alloc_window do ignore (Fl.Medium_queue.dequeue h) done;
        Fl.Medium_queue.flush h)
  in
  weak_stack ();
  weak_queue ();
  medium_stack ();
  medium_queue ();
  Format.print_newline ()

(* Measured cost of the enabled recorder: a single-domain window workload
   (push a window, flush, pop it back, flush — every op records lifecycle,
   force and splice events) timed with the switch off and again with it
   on. The budget in DESIGN.md §10 is < 10%. *)
let obs_overhead () =
  let was = Obs.enabled () in
  let s = Fl.Weak_stack.create ~elimination:false () in
  let h = Fl.Weak_stack.handle s in
  let window = 64 and rounds = 4_000 in
  let round () =
    for i = 1 to window do
      ignore (Fl.Weak_stack.push h i : unit Future.t)
    done;
    Fl.Weak_stack.flush h;
    for _ = 1 to window do
      ignore (Fl.Weak_stack.pop h : int option Future.t)
    done;
    Fl.Weak_stack.flush h
  in
  let time_rounds () =
    for _ = 1 to 200 do round () done;
    Gc.full_major ();
    let t0 = Sync.Mono.now () in
    for _ = 1 to rounds do round () done;
    Sync.Mono.now () -. t0
  in
  Obs.set_enabled false;
  let off = time_rounds () in
  Obs.set_enabled true;
  let on_ = time_rounds () in
  Obs.set_enabled was;
  let pct = (on_ -. off) /. off *. 100.0 in
  Format.printf
    "== Obs overhead: weak-stack window loop — recorder off %.3fs, on \
     %.3fs (%+.1f%%) ==@.@."
    off on_ pct;
  record ~bench:"obs-overhead" ~impl:"weak-stack-window" ~slack:window
    ~domains:1
    [ ("off_seconds", off); ("on_seconds", on_); ("overhead_pct", pct) ]

(* Cross-domain probe behind [trace] (and appended to [micro] when the
   recorder is on, so a `micro --trace` run always carries multi-domain
   events): two domains share one weak stack with the exchange array and
   one flat-combining stack, emitting every event family — future
   lifecycle including cancellations, window splices, elimination hits
   and misses, combiner leases — from at least two domains. *)
let obs_probe () =
  let s = Fl.Weak_stack.create ~elimination:true ~exchange:true () in
  let fc = Combining.Fc_stack.create () in
  let ops = 2_000 in
  let worker seed () =
    let h = Fl.Weak_stack.handle s in
    let hf = Combining.Fc_stack.handle fc in
    let rng = Workload.Rng.create ~seed ~stream:0 in
    let sl = Fl.Slack.create 16 in
    for i = 1 to ops do
      (if Workload.Rng.bool rng then begin
         let f = Fl.Weak_stack.push h i in
         Fl.Slack.note sl (fun () -> Future.force f)
       end
       else begin
         let f = Fl.Weak_stack.pop h in
         Fl.Slack.note sl (fun () -> ignore (Future.force f : int option))
       end);
      if i mod 3 = 0 then
        if Workload.Rng.bool rng then Combining.Fc_stack.push hf i
        else ignore (Combining.Fc_stack.pop hf : int option);
      (* A few withdrawn ops, so terminal-state variety shows up. *)
      if i mod 97 = 0 then
        ignore (Future.cancel (Fl.Weak_stack.pop h) : bool)
    done;
    Fl.Slack.drain sl;
    Fl.Weak_stack.flush h
  in
  let d1 = Domain.spawn (worker 11) and d2 = Domain.spawn (worker 22) in
  Domain.join d1;
  Domain.join d2;
  (* Guaranteed elimination hits: one domain parks takes while this one
     probes gives until each is claimed (bounded, in case a parked offer
     times out against a descheduled partner). *)
  let ex = Lockfree.Exchanger.create () in
  let taker =
    Domain.spawn (fun () ->
        for _ = 1 to 16 do
          ignore (Lockfree.Exchanger.take ~patience:10_000_000 ex : int option)
        done)
  in
  for _ = 1 to 16 do
    (* Probe only while a take is actually parked: a blind retry loop
       would flood the ring with one miss event per empty probe. *)
    let budget = ref 1_000_000 in
    let gave = ref false in
    while (not !gave) && !budget > 0 do
      decr budget;
      if Lockfree.Exchanger.takers_waiting ex then
        gave := Lockfree.Exchanger.try_give ex 1
      else Domain.cpu_relax ()
    done
  done;
  Domain.join taker

let trace_probe () =
  Obs.set_enabled true;
  Format.printf
    "== Trace: cross-domain probe (future lifecycle + splices + \
     elimination + combining) ==@.@.";
  obs_probe ();
  if !trace_path = None then begin
    (try Unix.mkdir "results" 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    trace_path := Some "results/TRACE_probe.json"
  end

(* Single-thread per-operation cost with slack 1 — the paper's direct
   overhead comparison of futures-based vs lock-free versions. *)
let micro () =
  let open Bechamel in
  Format.printf
    "== Micro: single-thread op cost, slack=1 (Bechamel, ns/op) ==@.@.";
  let stack_test (impl : R.stack_impl) =
    let inst = impl.s_make () in
    let o = inst.R.s_handle () in
    Test.make ~name:("stack-" ^ impl.s_name)
      (Staged.stage (fun () ->
           Future.force (o.R.s_push 1);
           ignore (Future.force (o.R.s_pop ()))))
  in
  let queue_test (impl : R.queue_impl) =
    let inst = impl.q_make () in
    let o = inst.R.q_handle () in
    Test.make ~name:("queue-" ^ impl.q_name)
      (Staged.stage (fun () ->
           Future.force (o.R.q_enq 1);
           ignore (Future.force (o.R.q_deq ()))))
  in
  let set_test (impl : R.set_impl) =
    let inst = prefill_set (impl.l_make ()) in
    let o = inst.R.l_handle () in
    let k = ref 0 in
    Test.make ~name:("list-" ^ impl.l_name)
      (Staged.stage (fun () ->
           k := (!k + 7919) mod key_range;
           ignore (Future.force (o.R.l_contains !k))))
  in
  let tests =
    List.map stack_test R.stack_impls
    @ List.map queue_test R.queue_impls
    @ List.map set_test R.set_impls
  in
  let grouped = Test.make_grouped ~name:"micro" ~fmt:"%s/%s" tests in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg_b =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg_b instances grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some (ns :: _) ->
          Format.printf "  %-24s %10.1f ns/op@." name ns;
          record ~bench:"micro" ~impl:name ~slack:1 ~domains:1
            [ ("ns_per_op", ns) ]
      | Some [] | None -> Format.printf "  %-24s (no estimate)@." name)
    (List.sort compare rows);
  Format.print_newline ();
  micro_alloc ();
  if Obs.enabled () then begin
    obs_overhead ();
    obs_probe ()
  end

(* ----------------------------- chaos -------------------------------- *)

(* Robustness run: seeded fault injection on every hot-path point
   (combining passes, record scans, spins, fulfils) plus one runner-level
   victim per repeat that dies or stalls mid-run. The interesting output
   is not the time but the recovery counters: how many workers were lost
   and how often a waiter usurped a stalled combiner's lease instead of
   hanging. Fault-free runs report 0 takeovers. *)
let chaos_seed = ref 2014

let chaos_bench cfg =
  let seed = !chaos_seed in
  Format.printf
    "== Chaos: flat combining under seeded faults (seed %d) — %d \
     ops/thread, %d repeat(s) ==@.@."
    seed cfg.ops cfg.repeats;
  (* Every cell runs with the watchdog on, so killed workers are also
     recovered (abandon hooks fire where registered; the recovered
     counter ticks either way) and the JSON sink gets the full lifecycle
     story: killed / takeovers / retired / poisoned / recovered. *)
  let watchdog = 0.002 in
  let emit ~impl ~threads ~takeovers ~retired (m : Workload.Runner.measurement)
      =
    record ~bench:"chaos" ~impl ~slack:0 ~domains:threads
      [
        ("seconds", m.Workload.Runner.seconds);
        ("killed", float_of_int m.Workload.Runner.killed);
        ("takeovers", float_of_int takeovers);
        ("retired", float_of_int retired);
        ("poisoned", float_of_int m.Workload.Runner.poisoned);
        ("recovered", float_of_int m.Workload.Runner.recovered);
        ("stall_warnings", float_of_int m.Workload.Runner.stall_warnings);
      ];
    Printf.sprintf "%s (%dk %dt %dp %dr)"
      (Workload.Report.seconds m.Workload.Runner.seconds)
      m.Workload.Runner.killed takeovers m.Workload.Runner.poisoned
      m.Workload.Runner.recovered
  in
  let cell ~impl ~threads ~insts ~takeovers ~retired ~run_measure =
    (* Seeded noise on every point, plus a scripted hard stall of the
       combiner every 1000th pass: 15 ms, comfortably past the ~6 ms a
       waiter needs to exhaust the default takeover budget of 64 backoff
       rounds, so multi-thread rows must show takeovers (a single thread
       has no waiter and shows 0). *)
    Faults.enable ~seed ();
    Faults.on "fc.pass" (fun k ->
        if k mod 1000 = 999 then Faults.Sleep 15e-3 else Faults.Nothing);
    let m =
      Fun.protect ~finally:Faults.clear_all (fun () ->
          run_measure ~chaos:(Workload.Runner.chaos ~seed ()))
    in
    let sum f = List.fold_left (fun a i -> a + f i) 0 !insts in
    emit ~impl ~threads ~takeovers:(sum takeovers) ~retired:(sum retired) m
  in
  let stack_cell ~threads =
    let insts = ref [] in
    let setup () =
      let s = Combining.Fc_stack.create () in
      insts := s :: !insts;
      s
    in
    let worker s ~thread ~ops =
      let h = Combining.Fc_stack.handle s in
      let rng = Workload.Rng.create ~seed:(0xC0A5 + seed) ~stream:thread in
      for _ = 1 to ops do
        Workload.Runner.heartbeat ();
        if Workload.Rng.bool rng then Combining.Fc_stack.push h 1
        else ignore (Combining.Fc_stack.pop h)
      done
    in
    cell ~impl:"fc-stack" ~threads ~insts
      ~takeovers:Combining.Fc_stack.combiner_takeovers
      ~retired:Combining.Fc_stack.retired_records
      ~run_measure:(fun ~chaos ->
        Workload.Runner.run ~threads ~repeats:cfg.repeats
          ~ops_per_thread:cfg.ops ~setup ~worker ~chaos ~watchdog ())
  in
  let queue_cell ~threads =
    let insts = ref [] in
    let setup () =
      let q = Combining.Fc_queue.create () in
      insts := q :: !insts;
      q
    in
    let worker q ~thread ~ops =
      let h = Combining.Fc_queue.handle q in
      let rng = Workload.Rng.create ~seed:(0xC0A5 + seed) ~stream:thread in
      for _ = 1 to ops do
        Workload.Runner.heartbeat ();
        if Workload.Rng.bool rng then Combining.Fc_queue.enqueue h 1
        else ignore (Combining.Fc_queue.dequeue h)
      done
    in
    cell ~impl:"fc-queue" ~threads ~insts
      ~takeovers:Combining.Fc_queue.combiner_takeovers
      ~retired:Combining.Fc_queue.retired_records
      ~run_measure:(fun ~chaos ->
        Workload.Runner.run ~threads ~repeats:cfg.repeats
          ~ops_per_thread:cfg.ops ~setup ~worker ~chaos ~watchdog ())
  in
  (* Weak-FL stack through the registry: the futures path. Each worker
     registers its handle's abandon hook, so when a kill strikes the
     watchdog poisons the orphaned window ([poisoned] > 0 whenever a
     worker dies with pending futures) instead of leaving waiters stuck.
     The runner's own [Die] plan is polite — the truncated worker still
     runs its final flush — so the cell also scripts a hard mid-window
     kill on a point the loop crosses between ops, the schedule that
     actually orphans futures. *)
  let weak_cell ~threads =
    let impl = R.find_stack "weak" in
    let setup () = impl.R.s_make () in
    let worker (s : R.stack_instance) ~thread ~ops =
      let o = s.R.s_handle () in
      Workload.Runner.set_abandon_hook o.R.s_abandon;
      let rng = Workload.Rng.create ~seed:(0xC0A5 + seed) ~stream:thread in
      for i = 1 to ops do
        Workload.Runner.heartbeat ();
        Faults.point "bench.op";
        if Workload.Rng.bool rng then ignore (o.R.s_push 1 : unit Future.t)
        else ignore (o.R.s_pop () : int option Future.t);
        if i mod 64 = 0 then o.R.s_flush ()
      done;
      o.R.s_flush ()
    in
    let no_insts = ref [] in
    cell ~impl:"weak-stack" ~threads ~insts:no_insts
      ~takeovers:(fun (_ : unit) -> 0)
      ~retired:(fun (_ : unit) -> 0)
      ~run_measure:(fun ~chaos ->
        (* Modular, not absolute: hit counters are process-global, so an
           absolute index would only ever fire in the first cell. *)
        Faults.on "bench.op" (fun k ->
            if k mod 1501 = 1500 then Faults.Kill else Faults.Nothing);
        Workload.Runner.run ~threads ~repeats:cfg.repeats
          ~ops_per_thread:cfg.ops ~setup ~worker ~chaos ~watchdog ())
  in
  let table =
    Workload.Report.create
      ~title:
        (Printf.sprintf
           "chaos, seed=%d (time; k=killed t=takeovers p=poisoned \
            r=recovered)"
           seed)
      ~columns:[ "fc-stack"; "fc-queue"; "weak-stack" ]
  in
  List.iter
    (fun threads ->
      Workload.Report.add_row table
        ~label:(string_of_int threads)
        ~cells:
          [ stack_cell ~threads; queue_cell ~threads; weak_cell ~threads ])
    cfg.threads;
  let ppf = Format.std_formatter in
  if cfg.csv then Workload.Report.csv ppf table
  else Workload.Report.print ppf table;
  Format.pp_print_newline ppf ()

(* ------------------------------ shard ------------------------------- *)

module ShardKey = struct
  type t = int

  let compare = Int.compare
  let hash x = x
end

module Shard = Fl.Shard_map.Make (ShardKey)
module BWM = Fl.Weak_map.Make (ShardKey)

let shard_key_range = 1024
let shard_lease = 0.01

(* The sharded-store benchmark: a perf panel (centralized weak map vs the
   sharded store at 2 and 8 buckets — sharding pays when handles mostly
   stay in their own buckets and costs transfers when they collide) and a
   chaos panel with a scripted kill at each transfer protocol step.
   Workers never force their futures: issue, flush every 64 ops, and let
   the transfer protocol route windows; teardown drains the map by
   deadline recovery, so a killed endpoint's in-flight window is poisoned,
   never leaked. *)
let shard_bench cfg =
  let seed = !chaos_seed in
  Format.printf
    "== Shard: sharded FL store (transfer protocol) — %d ops/thread, %d \
     repeat(s), seed %d ==@.@."
    cfg.ops cfg.repeats seed;
  let weak_measure ~threads =
    Workload.Runner.run ~threads ~repeats:cfg.repeats ~ops_per_thread:cfg.ops
      ~setup:(fun () -> BWM.create ())
      ~worker:(fun m ~thread ~ops ->
        let h = BWM.handle m in
        let rng = Workload.Rng.create ~seed:(0x5A4D + seed) ~stream:thread in
        for i = 1 to ops do
          let k = Workload.Rng.below rng shard_key_range in
          (match Workload.Rng.below rng 3 with
          | 0 -> ignore (BWM.insert h k i : bool Future.t)
          | 1 -> ignore (BWM.find h k : int option Future.t)
          | _ -> ignore (BWM.remove h k : int option Future.t));
          if i mod 64 = 0 then BWM.flush h
        done;
        BWM.flush h)
      ()
  in
  let insts : int Shard.t list ref = ref [] in
  let shard_setup ~buckets () =
    let m = Shard.create ~buckets ~lease:shard_lease ~grant_timeout:0.001 () in
    insts := m :: !insts;
    m
  in
  let shard_worker m ~thread ~ops =
    let h = Shard.handle m in
    Workload.Runner.set_abandon_hook (fun () -> Shard.abandon h);
    let rng = Workload.Rng.create ~seed:(0x5A4D + seed) ~stream:thread in
    for i = 1 to ops do
      Workload.Runner.heartbeat ();
      let k = Workload.Rng.below rng shard_key_range in
      (match Workload.Rng.below rng 3 with
      | 0 -> ignore (Shard.insert h k i : bool Future.t)
      | 1 -> ignore (Shard.find h k : int option Future.t)
      | _ -> ignore (Shard.remove h k : int option Future.t));
      if i mod 64 = 0 then Shard.flush h
    done;
    Shard.flush h;
    (* Linger as a cooperative owner: the grant pump only runs while a
       handle flushes, so without this, a worker that finishes first
       stops granting and every late cross-shard request waits out the
       full lease and recovers instead of transferring. Killed victims
       never get here — their buckets still take the recovery path. *)
    let linger = Sync.Mono.now () +. (shard_lease /. 2.0) in
    while Sync.Mono.now () < linger do
      Shard.flush h;
      Domain.cpu_relax ()
    done
  in
  let drain m =
    let dh = Shard.handle m in
    let deadline = Sync.Mono.now () +. 2.0 in
    while Shard.in_flight m > 0 && Sync.Mono.now () < deadline do
      ignore (Shard.recover_all dh : int);
      Unix.sleepf 0.0005
    done
  in
  (* Measure one cell and return it with the protocol stats summed over
     that cell's map instances (fresh per repeat). *)
  let shard_measure ~buckets ?plan ~threads () =
    insts := [];
    let m =
      Workload.Runner.run ~threads ~repeats:cfg.repeats
        ~ops_per_thread:cfg.ops ~setup:(shard_setup ~buckets)
        ~worker:shard_worker ~teardown:drain ?plan ~watchdog:0.002 ()
    in
    let sum f =
      List.fold_left (fun a i -> a + f (Shard.stats i)) 0 !insts
    in
    let stats =
      [
        ("requests", sum (fun s -> s.Shard.requests));
        ("grants", sum (fun s -> s.Shard.grants));
        ("ships", sum (fun s -> s.Shard.ships));
        ("acks", sum (fun s -> s.Shard.acks));
        ("recovers", sum (fun s -> s.Shard.recovers));
        ("retries", sum (fun s -> s.Shard.retries));
        ("degraded_finds", sum (fun s -> s.Shard.degraded_finds));
        ("proto_poisoned", sum (fun s -> s.Shard.poisoned));
      ]
    in
    (m, stats)
  in
  let emit ~impl ~threads ?(extra = []) (m, stats) =
    record ~bench:"shard" ~impl ~slack:0 ~domains:threads
      (List.map (fun (k, v) -> (k, float_of_int v)) stats
      @ [
          ("seconds", m.Workload.Runner.seconds);
          ("ops_per_s", m.Workload.Runner.throughput);
          ("killed", float_of_int m.Workload.Runner.killed);
          ("poisoned", float_of_int m.Workload.Runner.poisoned);
          ("recovered", float_of_int m.Workload.Runner.recovered);
        ]
      @ extra);
    (m, stats)
  in
  (* Perf panel. *)
  let table =
    Workload.Report.create
      ~title:
        "shard: centralized weak map vs sharded store (time; x = speedup \
         vs weak-map; a=acks)"
      ~columns:[ "weak-map"; "shard-2"; "shard-8" ]
  in
  List.iter
    (fun threads ->
      let mw = weak_measure ~threads in
      record_measurement ~bench:"shard" ~impl:"weak-map" ~slack:0 mw;
      let m2, _ =
        emit ~impl:"shard-2" ~threads (shard_measure ~buckets:2 ~threads ())
      in
      let m8, _ =
        emit ~impl:"shard-8" ~threads (shard_measure ~buckets:8 ~threads ())
      in
      let base = mw.Workload.Runner.seconds in
      let cell (m : Workload.Runner.measurement) =
        Printf.sprintf "%s (x%.2f)"
          (Workload.Report.seconds m.Workload.Runner.seconds)
          (base /. m.Workload.Runner.seconds)
      in
      Workload.Report.add_row table
        ~label:(string_of_int threads)
        ~cells:
          [ Workload.Report.seconds base; cell m2; cell m8 ])
    cfg.threads;
  let ppf = Format.std_formatter in
  if cfg.csv then Workload.Report.csv ppf table
  else Workload.Report.print ppf table;
  Format.pp_print_newline ppf ();
  (* Chaos panel: a scripted kill at each protocol step, installed as a
     Runner plan (and therefore uninstalled on every teardown path). The
     victim is whichever domain hits the point third; the run must
     complete with the loss counted, poisoned, and recovered — never a
     hang. Single-thread rows are inert (no second handle, no transfer,
     the kill never fires). *)
  let kill_table =
    Workload.Report.create
      ~title:
        (Printf.sprintf
           "shard chaos, seed=%d: scripted kill per protocol step (time; \
            k=killed p=poisoned r=recovered)"
           seed)
      ~columns:[ "shard.grant"; "shard.ship"; "shard.ack" ]
  in
  List.iter
    (fun threads ->
      let cellp pt =
        let plan = [ { Faults.pt; at = 1; act = Faults.Kill } ] in
        let m, _ =
          emit ~impl:("kill-" ^ pt) ~threads
            (shard_measure ~buckets:4 ~plan ~threads ())
        in
        Printf.sprintf "%s (%dk %dp %dr)"
          (Workload.Report.seconds m.Workload.Runner.seconds)
          m.Workload.Runner.killed m.Workload.Runner.poisoned
          m.Workload.Runner.recovered
      in
      Workload.Report.add_row kill_table
        ~label:(string_of_int threads)
        ~cells:
          [ cellp "shard.grant"; cellp "shard.ship"; cellp "shard.ack" ])
    cfg.threads;
  if cfg.csv then Workload.Report.csv ppf kill_table
  else Workload.Report.print ppf kill_table;
  Format.pp_print_newline ppf ()

(* ------------------------------ fuzz -------------------------------- *)

(* Conformance-fuzz smoke run: a short seeded campaign per target, the
   same machinery `flbench fuzz` drives (and CI gates on). Reported per
   target and recorded in the JSON sink; any counterexample is shrunk
   and saved under results/fuzz/. *)
let fuzz_bench cfg =
  let seed = !chaos_seed in
  let iters = max 2 cfg.repeats in
  Format.printf
    "== Fuzz: FL-conformance campaigns (seed %d, %d iters/target) ==@.@."
    seed iters;
  let failures = ref 0 in
  List.iter
    (fun (t : Fuzz.Exec.target) ->
      let file =
        Printf.sprintf "%d-%s.repro" seed
          (String.map (function '/' -> '-' | c -> c) t.Fuzz.Exec.name)
      in
      let r = Fuzz.Driver.fuzz ~iters ~budget:30. ~file ~seed t in
      record ~bench:"fuzz" ~impl:t.Fuzz.Exec.name ~slack:0
        ~domains:Fuzz.Program.default_size.Fuzz.Program.threads
        [
          ("iters", float_of_int r.Fuzz.Driver.iters);
          ("ops", float_of_int r.Fuzz.Driver.total_ops);
          ("violations", float_of_int r.Fuzz.Driver.violations);
          ("fsc_witnesses", float_of_int r.Fuzz.Driver.fsc_witnesses);
        ];
      match r.Fuzz.Driver.repro_path with
      | None ->
          Printf.printf "  %-16s [%-6s] %2d iters %5d ops  ok%s\n%!"
            r.Fuzz.Driver.target
            (Lin.Order.condition_name r.Fuzz.Driver.condition)
            r.Fuzz.Driver.iters r.Fuzz.Driver.total_ops
            (if r.Fuzz.Driver.fsc_witnesses > 0 then
               Printf.sprintf "  (%d fig3 Fsc witnesses)"
                 r.Fuzz.Driver.fsc_witnesses
             else "")
      | Some path ->
          incr failures;
          Printf.printf "  %-16s [%-6s] VIOLATION — shrunk repro: %s\n%!"
            r.Fuzz.Driver.target
            (Lin.Order.condition_name r.Fuzz.Driver.condition)
            path)
    Fuzz.Exec.targets;
  if !failures > 0 then
    Printf.printf "\n  %d target(s) FAILED — replay with flbench fuzz \
                   --replay <repro>\n"
      !failures;
  print_newline ()

(* ------------------------------ adapt ------------------------------- *)

(* Self-tuning controller vs hand-tuned static configurations, swept
   across contention regimes (thread counts x steady/bursty arrivals).
   Two panels:

   - queue-flatcomb: static combining pass budgets (1 = the default, 4,
     16) against the controller retuning the budget and scan limit live;
   - stack-weak-slack: static slack windows (1, 10, 100) against the
     controller retuning each worker's window from a deliberately-wrong
     start of 8.

   Every column, static included, runs with the recorder on: the
   comparison isolates the knob policy from the (sampled, cheap)
   telemetry tax the controller needs anyway. [--assert-tolerance pct]
   turns the match/beat criteria into an exit code for CI. *)

module Tn = Fl.Tunable
module Ctl = Tune.Controller

let assert_tol : float option ref = ref None
let assert_beats = ref false
let adapt_failures = ref 0

(* Epoch choice balances two costs on an oversubscribed host: shorter
   epochs converge faster (hysteresis 2 needs ~2 epochs per doubling),
   but every controller wake preempts a worker — at 0.5 ms epochs that
   tax alone is measurable against a single pinned worker. 2 ms keeps
   convergence inside the warm-up run while the steady-state wake tax
   stays in the noise. *)
let adapt_epoch = 0.002

let set_dial dials kind v =
  List.iter (fun (d : Tn.dial) -> if d.Tn.kind = kind then d.Tn.set v) dials

let ns_per_op (m : Workload.Runner.measurement) =
  1e9 /. m.Workload.Runner.throughput

let adapt_queue_worker ~arrival ~slack ((inst, _) : R.queue_instance * _)
    ~thread ~ops =
  let o = inst.R.q_handle () in
  let rng = Workload.Rng.create ~seed:0xADA7 ~stream:thread in
  let sl = Fl.Slack.create slack in
  let p = Workload.Arrival.pacer arrival in
  for _ = 1 to ops do
    Workload.Arrival.tick p;
    match Workload.Distribution.queue_op rng with
    | Workload.Distribution.Enq v ->
        let f = o.R.q_enq v in
        Fl.Slack.note sl (fun () -> Future.force f)
    | Workload.Distribution.Deq ->
        let f = o.R.q_deq () in
        Fl.Slack.note sl (fun () -> ignore (Future.force f))
  done;
  Fl.Slack.drain sl;
  o.R.q_flush ()

let adapt_stack_worker ~arrival ~slack
    ((inst, ctl) : R.stack_instance * Ctl.t option) ~thread ~ops =
  let o = inst.R.s_handle () in
  let rng = Workload.Rng.create ~seed:0xADA8 ~stream:thread in
  let sl = Fl.Slack.create slack in
  (* Adaptive column: each worker hands its own window to the live
     controller (registration is concurrent-safe). *)
  (match ctl with
  | Some c -> Ctl.add_dial c (Tn.of_slack ~name:"bench.slack" sl)
  | None -> ());
  let p = Workload.Arrival.pacer arrival in
  for _ = 1 to ops do
    Workload.Arrival.tick p;
    match Workload.Distribution.stack_op rng with
    | Workload.Distribution.Push v ->
        let f = o.R.s_push v in
        Fl.Slack.note sl (fun () -> Future.force f)
    | Workload.Distribution.Pop ->
        let f = o.R.s_pop () in
        Fl.Slack.note sl (fun () -> ignore (Future.force f))
  done;
  Fl.Slack.drain sl;
  o.R.s_flush ()

type adapt_col = {
  ac_name : string;
  ac_static : bool;
  ac_measure :
    threads:int -> arrival:Workload.Arrival.t -> Workload.Runner.measurement;
  ac_stop : unit -> unit;
      (* Adaptive columns keep ONE controller alive across every cell and
         repeat of the panel: each repeat's fresh structure re-registers
         its dials and warm-starts from the remembered configuration, so
         the search ramp is paid once, not once per measurement. The
         panel calls [ac_stop] when its table is done. *)
}

let no_stop () = ()

let flatcomb_cols cfg =
  let impl = R.find_queue "flatcomb" in
  let static budget =
    {
      ac_name =
        (if budget = 1 then "budget=1 (default)"
         else Printf.sprintf "budget=%d" budget);
      ac_static = true;
      ac_measure =
        (fun ~threads ~arrival ->
          Workload.Runner.run ~threads ~repeats:1 ~ops_per_thread:cfg.ops
            ~setup:(fun () ->
              let inst = impl.R.q_make () in
              set_dial (inst.R.q_dials ()) Tn.Fc_pass_budget budget;
              (inst, None))
            ~worker:(adapt_queue_worker ~arrival ~slack:1)
            ~cas_total:(fun (i, _) -> i.R.q_cas_count ())
            ~teardown:(fun (i, _) -> i.R.q_drain ())
            ());
      ac_stop = no_stop;
    }
  in
  let adaptive =
    let c = Ctl.create ~epoch:adapt_epoch () in
    Ctl.start c;
    {
      ac_name = "adaptive";
      ac_static = false;
      ac_measure =
        (fun ~threads ~arrival ->
          Workload.Runner.run ~threads ~repeats:1 ~ops_per_thread:cfg.ops
            ~setup:(fun () ->
              let inst = impl.R.q_make () in
              Ctl.add_dials c (inst.R.q_dials ());
              (inst, Some c))
            ~worker:(adapt_queue_worker ~arrival ~slack:1)
            ~cas_total:(fun (i, _) -> i.R.q_cas_count ())
            ~teardown:(fun (i, _) -> i.R.q_drain ())
            ());
      ac_stop = (fun () -> Ctl.stop c);
    }
  in
  List.map static [ 1; 4; 16 ] @ [ adaptive ]

let slack_cols cfg =
  let impl = R.find_stack "weak" in
  let measure ~slack ~ctl ~threads ~arrival =
    Workload.Runner.run ~threads ~repeats:1 ~ops_per_thread:cfg.ops
      ~setup:(fun () -> (impl.R.s_make (), ctl))
      ~worker:(adapt_stack_worker ~arrival ~slack)
      ~cas_total:(fun (i, _) -> i.R.s_cas_count ())
      ~teardown:(fun (i, _) -> i.R.s_drain ())
      ()
  in
  List.map
    (fun slack ->
      {
        ac_name = Printf.sprintf "slack=%d" slack;
        ac_static = true;
        ac_measure = measure ~slack ~ctl:None;
        ac_stop = no_stop;
      })
    [ 1; 10; 100 ]
  @ [
      (* Deliberately-wrong starting window: the controller has to find
         its way from 8 to wherever the statics' best sits (and, once
         found, warm-starts every later worker's fresh window there). *)
      (let c = Ctl.create ~epoch:adapt_epoch () in
       Ctl.start c;
       {
         ac_name = "adaptive (from 8)";
         ac_static = false;
         ac_measure = measure ~slack:8 ~ctl:(Some c);
         ac_stop = (fun () -> Ctl.stop c);
       });
    ]

let adapt_arrivals =
  [ Workload.Arrival.Steady;
    Workload.Arrival.Bursty { burst = 64; pause_ns = 50_000 } ]

(* Run one panel over every (threads, arrival) regime. Each cell is the
   median of [cfg.repeats] independent single-repeat runs — every repeat
   builds a fresh structure, while the adaptive column's one long-lived
   controller warm-starts each fresh structure's dials from the
   configuration it has already learned (a regime change re-adapts from
   there, exactly as a deployed controller would). Median is the robust
   statistic on an oversubscribed host: a min would crown whichever
   column drew the luckiest scheduler slice, a mean would charge one
   preempted repeat to the whole column. Returns the (default-column,
   adaptive-column) completion-time totals over all regimes, for the
   strict-beat gate. *)
let run_adapt_panel cfg ~panel cols =
  Fun.protect ~finally:(fun () -> List.iter (fun c -> c.ac_stop ()) cols)
  @@ fun () ->
  let table =
    Workload.Report.create
      ~title:
        (Printf.sprintf
           "%s (ns/op, median of %d repeats; x = adaptive vs best static)" panel
           cfg.repeats)
      ~columns:(List.map (fun c -> c.ac_name) cols)
  in
  let median ms =
    let sorted =
      List.sort
        (fun a b ->
          compare a.Workload.Runner.seconds b.Workload.Runner.seconds)
        ms
    in
    List.nth sorted (List.length sorted / 2)
  in
  (* Repeats are interleaved round-robin across columns — repeat r of
     every column runs before repeat r+1 of any — so slow drift in host
     load lands on all columns alike instead of on whichever column runs
     last. Each measurement starts from a settled heap: without the
     major slice, GC debt left by the previous column leaks into this
     one's timing. *)
  let measure_all cols ~threads ~arrival =
    let acc = List.map (fun c -> (c, ref [])) cols in
    for _ = 1 to cfg.repeats do
      List.iter
        (fun (c, ms) ->
          Gc.major ();
          ms := c.ac_measure ~threads ~arrival :: !ms)
        acc
    done;
    List.map (fun (_, ms) -> median !ms) acc
  in
  (* One unmeasured warm-up run per adaptive column. The claim under
     test is that the controller finds what hand-tuning found — and a
     static column IS its converged configuration from its very first
     op, paid for by offline tuning the table never shows. The adaptive
     column gets the offline phase the statics got: one run to learn,
     after which every measured cell starts from the remembered
     configuration (regime changes still re-adapt live). *)
  List.iter
    (fun c ->
      if not c.ac_static then
        ignore (c.ac_measure ~threads:1 ~arrival:Workload.Arrival.Steady))
    cols;
  let default_total = ref 0.0 and adaptive_total = ref 0.0 in
  List.iter
    (fun arrival ->
      List.iter
        (fun threads ->
          let ms = measure_all cols ~threads ~arrival in
          let bursty =
            match arrival with Workload.Arrival.Steady -> 0.0 | _ -> 1.0
          in
          List.iter2
            (fun c m ->
              record ~bench:"adapt"
                ~impl:(panel ^ "/" ^ c.ac_name)
                ~slack:0 ~domains:threads
                [
                  ("ns_per_op", ns_per_op m);
                  ("ops_per_s", m.Workload.Runner.throughput);
                  ("bursty", bursty);
                ])
            cols ms;
          let static_ns =
            List.filter_map
              (fun (c, m) -> if c.ac_static then Some (ns_per_op m) else None)
              (List.combine cols ms)
          in
          let best_static = List.fold_left min infinity static_ns in
          let adaptive_ns =
            match
              List.find_opt
                (fun (c, _) -> not c.ac_static)
                (List.combine cols ms)
            with
            | Some (_, m) -> ns_per_op m
            | None -> nan
          in
          let rel = adaptive_ns /. best_static in
          record ~bench:"adapt" ~impl:(panel ^ "/summary") ~slack:0
            ~domains:threads
            [
              ("best_static_ns", best_static);
              ("adaptive_ns", adaptive_ns);
              ("rel_vs_best", rel);
              ("bursty", bursty);
            ];
          (match !assert_tol with
          | Some tol when adaptive_ns > best_static *. (1.0 +. (tol /. 100.))
            ->
              incr adapt_failures;
              Printf.eprintf
                "ADAPT FAIL: %s @ %d threads %s: adaptive %.1f ns/op vs best \
                 static %.1f (rel %.3f > 1 + %g%%)\n%!"
                panel threads
                (Workload.Arrival.to_string arrival)
                adaptive_ns best_static rel tol
          | _ -> ());
          (match (ms, List.rev ms) with
          | first :: _, last :: _ ->
              default_total := !default_total +. first.Workload.Runner.seconds;
              adaptive_total := !adaptive_total +. last.Workload.Runner.seconds
          | _ -> ());
          Workload.Report.add_row table
            ~label:
              (Printf.sprintf "%d %s" threads
                 (Workload.Arrival.to_string arrival))
            ~cells:
              (List.map2
                 (fun c m ->
                   if c.ac_static then Printf.sprintf "%.0f" (ns_per_op m)
                   else Printf.sprintf "%.0f (x%.2f)" (ns_per_op m) rel)
                 cols ms))
        cfg.threads)
    adapt_arrivals;
  let ppf = Format.std_formatter in
  if cfg.csv then Workload.Report.csv ppf table
  else Workload.Report.print ppf table;
  Format.pp_print_newline ppf ();
  (!default_total, !adaptive_total)

let adapt cfg =
  Format.printf
    "== Adapt: self-tuning controller vs hand-tuned statics — %d ops/thread, \
     %d repeat(s) ==@.@."
    cfg.ops cfg.repeats;
  let was = Obs.enabled () in
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled was)
    (fun () ->
      let d_fc, a_fc =
        run_adapt_panel cfg ~panel:"queue-flatcomb" (flatcomb_cols cfg)
      in
      let (_ : float * float) =
        run_adapt_panel cfg ~panel:"stack-weak-slack" (slack_cols cfg)
      in
      (* The strict-beat gate: summed over every regime, the controller
         must do strictly better than the out-of-the-box pass budget. *)
      let beats = a_fc < d_fc in
      record ~bench:"adapt" ~impl:"queue-flatcomb/beats-default" ~slack:0
        ~domains:0
        [
          ("default_total_s", d_fc);
          ("adaptive_total_s", a_fc);
          ("beats", if beats then 1.0 else 0.0);
        ];
      Printf.printf
        "  queue-flatcomb totals over all regimes: default %.4fs, adaptive \
         %.4fs — adaptive %s the default\n\n\
         %!"
        d_fc a_fc
        (if beats then "beats" else "does NOT beat");
      if (not beats) && !assert_beats then begin
        incr adapt_failures;
        Printf.eprintf
          "ADAPT FAIL: adaptive totals %.4fs do not beat the default %.4fs\n%!"
          a_fc d_fc
      end)

(* ----------------------------- service ------------------------------ *)

(* Open-loop service saturation sweep (ROADMAP item 3). Per-worker
   Poisson offered rates spanning both sides of the saturation knee
   drive the session model (job queue + session store) for each backend;
   the Overload controller watches the coordinated-omission-safe sojourn
   tail and walks admit → squeeze → shed → degrade as the generator
   outruns the service. Below the knee nothing is shed and the sojourn
   tail is flat; past it the shed rate rises while the admitted subset
   keeps completing — shed, not stalled.

   A second panel replays overload chaos: bursty arrivals (the
   arrival-rate step at micro scale) past the knee with scripted kills
   at an admission decision, a transfer grant and the controller's own
   epoch, under the runner's watchdog. The liveness claim is simply that
   the panel terminates with its books balanced: every admitted op
   completed, failed, or died with a counted kill.

   [--assert-service] turns the gates into an exit code:
   - the lowest offered rate sheds nothing (zero sheds below the knee);
   - every cell's sojourn p999 stays under the liveness bound;
   - chaos cells kill at least one worker and still terminate. *)

module Svc = Workload.Service
module Ovl = Workload.Overload

let assert_service = ref false
let service_failures = ref 0

let service_fail fmt =
  Printf.ksprintf
    (fun msg ->
      if !assert_service then incr service_failures;
      Printf.eprintf "SERVICE %s: %s\n%!"
        (if !assert_service then "FAIL" else "note")
        msg)
    fmt

(* Liveness bound on the recorded tail: a sojourn beyond this means an
   admitted request effectively stalled rather than being shed. *)
let service_p999_bound_ns = 60_000_000_000

(* The sweep's overload budgets: generous force/pendingness budgets (we
   are not tuning the structures here) and a sojourn budget that is the
   open-loop signal. The budget must sit well above the worst single
   stall a healthy service can see — one bucket-lease transfer (5 ms) —
   or a lone transfer inside one epoch window reads as overload; 50 ms
   (10 leases) only trips when a real backlog accumulates. *)
let service_overload =
  {
    Ovl.default with
    p99_budget_ns = 50_000_000;
    pending_budget_ns = 500_000_000;
    sojourn_budget_ns = 50_000_000;
  }

let service_rates cfg =
  if cfg.ops <= 5_000 then [ 5_000.0; 50_000.0; 500_000.0 ]
  else [ 5_000.0; 25_000.0; 125_000.0; 625_000.0; 3_125_000.0 ]

let service_record ~impl ~rate ~workers (cfg_svc : Svc.config)
    (r : Svc.result) =
  record ~bench:"service" ~impl ~slack:cfg_svc.Svc.slack ~domains:workers
    [
      ("offered_rate_per_s", rate *. float_of_int workers);
      ( "achieved_rate_per_s",
        if r.Svc.measurement.Workload.Runner.seconds > 0.0 then
          float_of_int r.Svc.completed
          /. r.Svc.measurement.Workload.Runner.seconds
        else 0.0 );
      ("offered", float_of_int r.Svc.offered);
      ("admitted", float_of_int r.Svc.admitted);
      ("shed", float_of_int r.Svc.shed);
      ("shed_rate", Svc.shed_rate r);
      ("completed", float_of_int r.Svc.completed);
      ("failed", float_of_int r.Svc.failed);
      ("degraded_writes", float_of_int r.Svc.degraded_writes);
      ("retries", float_of_int r.Svc.retries);
      ("sojourn_p50_ns", float_of_int (Svc.sojourn_p r 50.0));
      ("sojourn_p99_ns", float_of_int (Svc.sojourn_p r 99.0));
      ("sojourn_p999_ns", float_of_int (Svc.sojourn_p r 99.9));
      ("max_stage", float_of_int (Ovl.stage_index r.Svc.max_stage));
      ("final_stage", float_of_int (Ovl.stage_index r.Svc.final_stage));
      ("escalations", float_of_int r.Svc.escalations);
      ("recoveries", float_of_int r.Svc.recoveries);
      ("controller_epochs", float_of_int r.Svc.controller_epochs);
      ("killed", float_of_int r.Svc.measurement.Workload.Runner.killed);
      ("poisoned", float_of_int r.Svc.measurement.Workload.Runner.poisoned);
    ]

let service_bench cfg =
  let workers = min 4 (List.fold_left max 2 cfg.threads) in
  let requests = cfg.ops in
  Format.printf
    "== Service: open-loop saturation sweep — %d workers, %d requests/worker, \
     %d repeat(s) ==@.@."
    workers requests cfg.repeats;
  let backends = [ Svc.Central; Svc.Sharded ] in
  let rates = service_rates cfg in
  let table =
    Workload.Report.create
      ~title:
        "service: sojourn p999 (ms) / shed rate / deepest stage, by offered \
         load"
      ~columns:(List.map Svc.backend_name backends)
  in
  let sweep rate =
    let cells =
      List.map
        (fun backend ->
          let cfg_svc =
            {
              Svc.default_config with
              Svc.workers;
              requests_per_worker = requests;
              process = Workload.Arrival.Poisson { rate };
              backend;
              overload = service_overload;
              (* 10 ms epochs: long enough that one lease transfer does
                 not dominate an epoch's percentile window. *)
              epoch_s = 0.01;
            }
          in
          let r = Svc.run ~repeats:cfg.repeats cfg_svc in
          let impl =
            Printf.sprintf "%s/%s" (Svc.backend_name backend)
              (Workload.Arrival.process_to_string cfg_svc.Svc.process)
          in
          service_record ~impl ~rate ~workers cfg_svc r;
          let p999 = Svc.sojourn_p r 99.9 in
          let total = workers * requests * cfg.repeats in
          if r.Svc.admitted + r.Svc.shed <> total then
            service_fail "%s: admitted %d + shed %d <> %d requests" impl
              r.Svc.admitted r.Svc.shed total;
          (* Books balance: every admitted op either completed or failed
             with a counted fate (a lease steal orphans the quiet
             owner's in-flight window — rare, but a legal fate). *)
          if r.Svc.completed + r.Svc.failed <> r.Svc.admitted then
            service_fail "%s: %d admitted but %d completed + %d failed"
              impl r.Svc.admitted r.Svc.completed r.Svc.failed;
          if p999 > service_p999_bound_ns then
            service_fail "%s: sojourn p999 %.1fs beyond the liveness bound"
              impl
              (float_of_int p999 /. 1e9);
          if rate = List.hd rates && r.Svc.shed > 0 then
            service_fail "%s: %d sheds below the knee" impl r.Svc.shed;
          Printf.sprintf "%.2f / %.2f / %s"
            (float_of_int p999 /. 1e6)
            (Svc.shed_rate r)
            (Ovl.stage_name r.Svc.max_stage))
        backends
    in
    Workload.Report.add_row table
      ~label:(Printf.sprintf "%.0f req/s" (rate *. float_of_int workers))
      ~cells
  in
  List.iter sweep rates;
  let ppf = Format.std_formatter in
  if cfg.csv then Workload.Report.csv ppf table
  else Workload.Report.print ppf table;
  Format.pp_print_newline ppf ();
  (* Overload chaos: bursty arrivals past the knee, scripted kills at an
     admission decision, a bucket grant and the controller epoch.
     Conformance recording is suspended for the panel: a killed worker
     can apply an enqueue whose completion event was never emitted, so
     kill histories are not certifiable (DESIGN.md §15). *)
  let conf_stride = Obs.conformance_stride () in
  Obs.set_conformance_stride 0;
  Format.printf "service: overload chaos (bursty, scripted kills)@.";
  let plan =
    [
      { Faults.pt = "service.admit"; at = 200; act = Faults.Kill };
      { Faults.pt = "shard.grant"; at = 1; act = Faults.Kill };
      { Faults.pt = "service.epoch"; at = 8; act = Faults.Kill };
    ]
  in
  let cfg_svc =
    {
      Svc.default_config with
      Svc.workers;
      requests_per_worker = requests;
      process =
        Workload.Arrival.Burst
          { rate = 500_000.0; burst = max 2 (requests / 10) };
      backend = Svc.Sharded;
      overload = service_overload;
      epoch_s = 0.002;
    }
  in
  let r = Svc.run ~plan ~watchdog:0.005 ~repeats:cfg.repeats cfg_svc in
  service_record ~impl:"sharded/chaos-burst" ~rate:500_000.0 ~workers cfg_svc
    r;
  let killed = r.Svc.measurement.Workload.Runner.killed in
  Printf.printf
    "  %d offered, %d admitted, %d shed, %d completed, %d failed — %d \
     killed, %d poisoned, deepest stage %s\n\n\
     %!"
    r.Svc.offered r.Svc.admitted r.Svc.shed r.Svc.completed r.Svc.failed
    killed
    r.Svc.measurement.Workload.Runner.poisoned
    (Ovl.stage_name r.Svc.max_stage);
  if killed < 1 then
    service_fail "chaos: the kill plan killed nobody (plan did not fire)";
  if r.Svc.completed > r.Svc.admitted then
    service_fail "chaos: more completions (%d) than admissions (%d)"
      r.Svc.completed r.Svc.admitted;
  if Svc.sojourn_p r 99.9 > service_p999_bound_ns then
    service_fail "chaos: sojourn p999 beyond the liveness bound";
  Obs.set_conformance_stride conf_stride

(* --------------------------- conformance ----------------------------- *)

(* Online-conformance panel (DESIGN.md §15):

   1. monitor throughput — synthetic completed-operation streams of
      growing length through one Lin.Stream monitor, certifying at the
      end: the events/s the offline [validate_trace --conformance] path
      and the fuzz mega mode lean on;
   2. sampling overhead — the service sweep's middle cell run twice,
      conformance recording off vs on at the given stride, identical
      otherwise. With [--assert-service] an overhead above 10% fails
      the run: the sampled monitor must be cheap enough to leave on. *)

let conformance_overhead_gate = 10.0

let conformance_bench cfg =
  Format.printf "== Conformance: monitor throughput + sampling overhead ==@.@.";
  (* Monitor throughput. A queue stream interleaving adds and removes
     with a running backlog, fed then finalized; every value distinct so
     the order-respecting certificates stay on their fast path. *)
  let throughput n =
    let m = Lin.Stream.create Lin.Stream.Fifo in
    let t0 = Unix.gettimeofday () in
    (* Alternating enqueue/FIFO-order dequeue with overlapping
       intervals: valid, every value distinct, backlog bounded. *)
    for i = 0 to n - 1 do
      let start = (i * 3) + 1 in
      let stop = start + 4 in
      let ev =
        if i mod 2 = 0 then Lin.Stream.Add (i / 2)
        else Lin.Stream.Remove (i / 2)
      in
      Lin.Stream.feed m ~start ~stop ev
    done;
    (match Lin.Stream.finalize m with
    | Lin.Stream.Accept -> ()
    | Lin.Stream.Reject { reason; _ } ->
        service_fail "conformance: synthetic stream rejected (%s)" reason);
    let dt = Unix.gettimeofday () -. t0 in
    let rate = if dt > 0.0 then float_of_int n /. dt else 0.0 in
    record ~bench:"conformance" ~impl:"stream-monitor" ~slack:0 ~domains:1
      [ ("events", float_of_int n); ("events_per_s", rate) ];
    Printf.printf "  stream monitor: %9d events in %6.3f s  (%.2e events/s)\n%!"
      n dt rate;
    rate
  in
  ignore (throughput 10_000 : float);
  ignore (throughput 100_000 : float);
  let rate = throughput 1_000_000 in
  (* The acceptance bar: a million-event trace must certify in well
     under a minute — at the measured rate, with generous slop. *)
  if rate < 1_000_000.0 /. 60.0 then
    service_fail "conformance: %.0f events/s cannot certify 1M events in 60s"
      rate;
  (* Sampling overhead on the service path: the sweep's saturating rate
     (arrival-paced cells hide per-op cost behind the generator's
     waits), conformance off vs on at the current stride (or 8 if
     recording was off), same seed, same arrivals. Min-of-k on both
     sides after a warmup: the gate compares best-case to best-case so
     a single noisy repeat on a shared runner does not trip it. *)
  let workers = min 4 (List.fold_left max 2 cfg.threads) in
  let requests = max 10_000 cfg.ops in
  let rates = service_rates cfg in
  let rate_top = List.nth rates (List.length rates - 1) in
  let cfg_svc =
    {
      Svc.default_config with
      Svc.workers;
      requests_per_worker = requests;
      process = Workload.Arrival.Poisson { rate = rate_top };
      backend = Svc.Sharded;
      overload = service_overload;
      epoch_s = 0.01;
    }
  in
  let stride =
    match Obs.conformance_stride () with 0 -> 8 | n -> n
  in
  let was = Obs.conformance_stride () in
  let timed conf =
    Obs.set_conformance_stride (if conf then stride else 0);
    let r = Svc.run ~repeats:1 cfg_svc in
    Obs.set_conformance_stride 0;
    r.Svc.measurement.Workload.Runner.seconds
  in
  ignore (timed false : float);
  let reps = max 3 cfg.repeats in
  let min_of conf =
    let best = ref infinity in
    for _ = 1 to reps do
      best := Float.min !best (timed conf)
    done;
    !best
  in
  let base = min_of false in
  let conf = min_of true in
  Obs.set_conformance_stride was;
  let overhead =
    if base > 0.0 then (conf -. base) /. base *. 100.0 else 0.0
  in
  record ~bench:"conformance" ~impl:"service-overhead" ~slack:0
    ~domains:workers
    [
      ("stride", float_of_int stride);
      ("base_seconds", base);
      ("conformance_seconds", conf);
      ("overhead_pct", overhead);
    ];
  Printf.printf
    "  service overhead: stride 1/%d — %.3f s off, %.3f s on  (%+.1f%%)\n\n%!"
    stride base conf overhead;
  if overhead > conformance_overhead_gate then
    service_fail "conformance: sampling overhead %.1f%% beyond the %.0f%% gate"
      overhead conformance_overhead_gate

(* ------------------------------ main -------------------------------- *)

let parse_int_list s = List.map int_of_string (String.split_on_char ',' s)

let usage () =
  prerr_endline
    "usage: main.exe \
     [fig4|fig5|fig6|ablation|micro|cas|extra|shard|chaos|trace|fuzz|adapt|service|conformance|all]... \
     [--quick|--full] [--ops N] [--repeats N] [--threads a,b,c] [--slacks \
     a,b,c] [--seed N] [--csv] [--json PATH] [--obs] [--trace PATH] \
     [--conformance-stride N] [--assert-tolerance PCT] [--assert-beats] \
     [--assert-service]";
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse cfg cmds = function
    | [] -> (cfg, cmds)
    | "--quick" :: rest -> parse quick_config cmds rest
    | "--full" :: rest -> parse full_config cmds rest
    | "--csv" :: rest -> parse { cfg with csv = true } cmds rest
    | "--ops" :: n :: rest -> parse { cfg with ops = int_of_string n } cmds rest
    | "--repeats" :: n :: rest ->
        parse { cfg with repeats = int_of_string n } cmds rest
    | "--threads" :: l :: rest ->
        parse { cfg with threads = parse_int_list l } cmds rest
    | "--slacks" :: l :: rest ->
        parse { cfg with slacks = parse_int_list l } cmds rest
    | "--seed" :: n :: rest ->
        chaos_seed := int_of_string n;
        parse cfg cmds rest
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse cfg cmds rest
    | "--obs" :: rest ->
        Obs.set_enabled true;
        parse cfg cmds rest
    | "--assert-tolerance" :: p :: rest ->
        assert_tol := Some (float_of_string p);
        parse cfg cmds rest
    | "--assert-beats" :: rest ->
        assert_beats := true;
        parse cfg cmds rest
    | "--assert-service" :: rest ->
        assert_service := true;
        parse cfg cmds rest
    | "--trace" :: path :: rest ->
        Obs.set_enabled true;
        trace_path := Some path;
        parse cfg cmds rest
    | "--conformance-stride" :: n :: rest ->
        (* Same as FLDS_OBS_CONFORMANCE=1/N; implies --obs so the op
           events actually reach the rings. Conformance traces must be
           lossless (a dropped completion event reads as a violation or
           an uncertifiable trace), so rings created from here on get
           room for every event of a smoke-sized run. *)
        Obs.set_enabled true;
        Obs.set_conformance_stride (int_of_string n);
        Obs.Trace.set_capacity 65_536;
        parse cfg cmds rest
    | cmd :: rest
      when List.mem cmd
             [ "fig4"; "fig5"; "fig6"; "ablation"; "micro"; "cas"; "extra";
               "shard"; "chaos"; "trace"; "fuzz"; "adapt"; "service";
               "conformance"; "all" ]
      ->
        parse cfg (cmd :: cmds) rest
    | _ -> usage ()
  in
  (* With no arguments at all, run everything at smoke-run sizes so the
     default invocation finishes in minutes; pass explicit subcommands
     (and --ops/--repeats or --full) for publication-grade runs, as
     recorded under results/. *)
  let cfg, cmds =
    match args with
    | [] -> (quick_config, [ "all" ])
    | _ ->
        let cfg, cmds = parse default_config [] args in
        (cfg, if cmds = [] then [ "all" ] else List.rev cmds)
  in
  let run = function
    | "fig4" -> fig4 cfg
    | "fig5" -> fig5 cfg
    | "fig6" -> fig6 cfg
    | "ablation" -> ablation cfg
    | "micro" -> micro ()
    | "cas" -> cas_experiment cfg
    | "extra" -> extra cfg
    | "shard" -> shard_bench cfg
    | "chaos" -> chaos_bench cfg
    | "trace" -> trace_probe ()
    | "fuzz" -> fuzz_bench cfg
    | "adapt" -> adapt cfg
    | "service" -> service_bench cfg
    | "conformance" -> conformance_bench cfg
    | "all" ->
        (* chaos is deliberately not part of [all]: its injected delays
           would contaminate the figure timings run in the same process. *)
        fig4 cfg;
        fig5 cfg;
        fig6 cfg;
        ablation cfg;
        cas_experiment cfg;
        extra cfg;
        micro ()
    | _ -> usage ()
  in
  List.iter run cmds;
  write_json ();
  write_trace ();
  if !adapt_failures > 0 then begin
    Printf.eprintf "adapt: %d regime(s) outside tolerance\n%!" !adapt_failures;
    exit 1
  end;
  if !service_failures > 0 then begin
    Printf.eprintf "service: %d gate(s) failed\n%!" !service_failures;
    exit 1
  end
