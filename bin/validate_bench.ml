(* validate_bench — schema check for the flat benchmark JSON that
   bench/main.exe --json writes (CI's bench smoke jobs run this on fresh
   output; the committed results/BENCH_*.json files must pass it too).
   Verifies:

     - the file is non-empty, well-formed JSON with string
       [generated_by] and [git_rev] fields and a [records] array
       ([--min-records N] raises the floor);
     - every record is an object carrying bench (non-empty string),
       impl (non-empty string), integer slack and domains, and only
       finite numbers elsewhere (the writer emits null for a non-finite
       measurement — a null that reaches a committed file is a bug in
       the bench, not the validator);
     - [--bench NAME] (repeatable): at least one record of that bench
       kind appears;
     - adapt records get their semantic checks: every [*/summary]
       record carries positive best_static_ns and adaptive_ns whose
       ratio reproduces rel_vs_best, [--max-rel X] bounds rel_vs_best
       over every summary (the tolerance gate, re-checked offline), and
       a [--require-beats] run must contain a [*/beats-default] record
       with beats = 1;
     - service records get theirs: books must balance (completed +
       failed <= admitted, admitted + shed <= offered, shed_rate
       reproduces shed / offered), [--service-p999-budget NS] bounds
       every sweep record's sojourn_p999_ns (the admitted-op tail must
       stay under budget even past the knee), and [--service-knee RATE]
       requires records offered at or below RATE req/s to shed nothing
       (the open-loop knee: below saturation, admission control must be
       invisible).

   Exits 0 with a summary on success, 1 with a diagnostic on the first
   violation. The parser is hand-rolled: the repo deliberately has no
   JSON dependency. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "offset %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' -> (
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 128 -> Buffer.add_char b (Char.chr code)
            | Some _ -> Buffer.add_char b '?'
            | None -> fail "malformed \\u escape")
        | _ -> fail "unknown escape");
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a value";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing content after document";
  v

let () =
  let file = ref None in
  let min_records = ref 1 in
  let max_rel = ref None in
  let require_beats = ref false in
  let service_p999_budget = ref None in
  let service_knee = ref None in
  let benches = ref [] in
  let usage () =
    prerr_endline
      "usage: validate_bench FILE [--min-records N] [--bench NAME]... \
       [--max-rel X] [--require-beats] [--service-p999-budget NS] \
       [--service-knee RATE]";
    exit 2
  in
  let rec parse_args = function
    | [] -> ()
    | "--min-records" :: v :: rest ->
        (match int_of_string_opt v with
        | Some m when m >= 1 -> min_records := m
        | _ -> usage ());
        parse_args rest
    | "--max-rel" :: v :: rest ->
        (match float_of_string_opt v with
        | Some x when x > 0.0 -> max_rel := Some x
        | _ -> usage ());
        parse_args rest
    | "--require-beats" :: rest ->
        require_beats := true;
        parse_args rest
    | "--service-p999-budget" :: v :: rest ->
        (match float_of_string_opt v with
        | Some x when x > 0.0 -> service_p999_budget := Some x
        | _ -> usage ());
        parse_args rest
    | "--service-knee" :: v :: rest ->
        (match float_of_string_opt v with
        | Some x when x > 0.0 -> service_knee := Some x
        | _ -> usage ());
        parse_args rest
    | "--bench" :: b :: rest ->
        benches := b :: !benches;
        parse_args rest
    | a :: rest when !file = None && String.length a > 0 && a.[0] <> '-' ->
        file := Some a;
        parse_args rest
    | _ -> usage ()
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let file = match !file with Some f -> f | None -> usage () in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "validate_bench: %s: %s\n" file msg;
        exit 1)
      fmt
  in
  let text =
    match In_channel.with_open_bin file In_channel.input_all with
    | "" -> fail "empty file"
    | s -> s
    | exception Sys_error e -> fail "%s" e
  in
  let doc = try parse text with Bad m -> fail "bad JSON: %s" m in
  let top = match doc with Obj kv -> kv | _ -> fail "top level not an object" in
  let str_field k =
    match List.assoc_opt k top with
    | Some (Str s) when s <> "" -> s
    | _ -> fail "missing or empty %S" k
  in
  let (_ : string) = str_field "generated_by" in
  let (_ : string) = str_field "git_rev" in
  let records =
    match List.assoc_opt "records" top with
    | Some (Arr rs) -> rs
    | _ -> fail "missing records array"
  in
  if List.length records < !min_records then
    fail "%d record(s), need at least %d" (List.length records) !min_records;
  let get r k = match r with Obj kv -> List.assoc_opt k kv | _ -> None in
  let num r k =
    match get r k with
    | Some (Num x) when Float.is_finite x -> x
    | _ -> fail "record %s: missing or non-finite %S" (match get r "impl" with Some (Str s) -> s | _ -> "?") k
  in
  let seen_bench = Hashtbl.create 8 in
  let summaries = ref 0 and beats_ok = ref false in
  List.iteri
    (fun i r ->
      (match r with Obj _ -> () | _ -> fail "record %d not an object" i);
      let bench =
        match get r "bench" with
        | Some (Str s) when s <> "" -> s
        | _ -> fail "record %d: missing bench" i
      in
      Hashtbl.replace seen_bench bench ();
      let impl =
        match get r "impl" with
        | Some (Str s) when s <> "" -> s
        | _ -> fail "record %d: missing impl" i
      in
      let int_field k =
        let x = num r k in
        if Float.of_int (Float.to_int x) <> x then
          fail "record %s: %S not an integer" impl k
      in
      int_field "slack";
      int_field "domains";
      (* Every remaining field must be a finite number: the writer emits
         null for non-finite measurements, and none may be committed. *)
      (match r with
      | Obj kv ->
          List.iter
            (fun (k, v) ->
              match v with
              | Str _ when k = "bench" || k = "impl" -> ()
              | Num x when Float.is_finite x -> ()
              | _ -> fail "record %s: field %S not a finite number" impl k)
            kv
      | _ -> ());
      if bench = "adapt" then begin
        let ends_with suf =
          let ls = String.length suf and li = String.length impl in
          li >= ls && String.sub impl (li - ls) ls = suf
        in
        if ends_with "/summary" then begin
          incr summaries;
          let best = num r "best_static_ns" and ad = num r "adaptive_ns" in
          let rel = num r "rel_vs_best" in
          if best <= 0.0 || ad <= 0.0 then
            fail "summary %s: non-positive ns" impl;
          if Float.abs ((ad /. best) -. rel) > 0.01 *. rel then
            fail "summary %s: rel_vs_best %.4f does not match %.4f" impl rel
              (ad /. best);
          match !max_rel with
          | Some x when rel > x ->
              fail "summary %s: rel_vs_best %.4f exceeds --max-rel %.4f" impl
                rel x
          | _ -> ()
        end;
        if ends_with "/beats-default" then begin
          let beats = num r "beats" in
          if beats <> 0.0 && beats <> 1.0 then
            fail "%s: beats must be 0 or 1" impl;
          let d = num r "default_total_s" and a = num r "adaptive_total_s" in
          if (a < d) <> (beats = 1.0) then
            fail "%s: beats flag contradicts the totals" impl;
          if beats = 1.0 then beats_ok := true
        end
      end;
      if bench = "service" then begin
        let offered = num r "offered"
        and admitted = num r "admitted"
        and shed = num r "shed"
        and completed = num r "completed"
        and failed = num r "failed"
        and shed_rate = num r "shed_rate" in
        if completed +. failed > admitted then
          fail "service %s: completed + failed exceeds admitted" impl;
        if admitted +. shed > offered then
          fail "service %s: admitted + shed exceeds offered" impl;
        let expect_rate = if offered = 0.0 then 0.0 else shed /. offered in
        if Float.abs (shed_rate -. expect_rate) > 1e-3 then
          fail "service %s: shed_rate %.4f does not match shed/offered %.4f"
            impl shed_rate expect_rate;
        let p50 = num r "sojourn_p50_ns"
        and p99 = num r "sojourn_p99_ns"
        and p999 = num r "sojourn_p999_ns" in
        if not (p50 <= p99 && p99 <= p999) then
          fail "service %s: sojourn percentiles not monotone" impl;
        (match !service_p999_budget with
        | Some budget when p999 > budget ->
            fail "service %s: sojourn_p999_ns %.0f exceeds budget %.0f" impl
              p999 budget
        | _ -> ());
        match !service_knee with
        | Some knee when num r "offered_rate_per_s" <= knee && shed > 0.0 ->
            fail "service %s: %d shed(s) below the knee (%.0f req/s)" impl
              (int_of_float shed) knee
        | _ -> ()
      end)
    records;
  List.iter
    (fun b ->
      if not (Hashtbl.mem seen_bench b) then
        fail "no record of bench kind %S" b)
    !benches;
  if List.mem "adapt" !benches && !summaries = 0 then
    fail "adapt run produced no summary records";
  if !require_beats && not !beats_ok then
    fail "no beats-default record with beats = 1";
  Printf.printf
    "validate_bench: %s OK (%d records, %d adapt summaries%s)\n" file
    (List.length records) !summaries
    (if !beats_ok then ", beats default" else "")
