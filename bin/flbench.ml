(* flbench — command-line driver for single experiments.

   The bench/main.exe harness regenerates the paper's figures wholesale;
   this tool runs one configuration at a time, which is handier for
   exploration and scripting:

     flbench list
     flbench run --structure stack --impl weak --threads 4 --slack 20
     flbench check --structure queue --impl medium --rounds 20
*)

module Future = Futures.Future
module R = Fl.Registry
open Cmdliner

let structures = [ "stack"; "queue"; "list" ]

let impl_names = List.map (fun i -> i.R.s_name) R.stack_impls

let set_impl_names = List.map (fun i -> i.R.l_name) R.set_impls

let all_impl_names =
  List.sort_uniq compare (impl_names @ set_impl_names)

(* ------------------------------- list ------------------------------- *)

let list_cmd =
  let doc = "List available structures and implementations." in
  let run () =
    print_endline "structures:      stack queue list";
    print_endline
      ("implementations: " ^ String.concat " " impl_names
     ^ " (+ txn for list)");
    print_endline
      "conditions:      lockfree/strong = strong-FL, medium = medium-FL, \
       weak = weak-FL"
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ------------------------------- run -------------------------------- *)

let structure_arg =
  let doc = "Data structure: stack, queue or list." in
  Arg.(
    required
    & opt (some (enum (List.map (fun s -> (s, s)) structures))) None
    & info [ "s"; "structure" ] ~docv:"STRUCT" ~doc)

let impl_arg =
  let doc =
    "Implementation: lockfree, flatcomb, weak, medium or strong — plus \
     elim (stacks only) and txn (lists only)."
  in
  Arg.(
    required
    & opt (some (enum (List.map (fun s -> (s, s)) all_impl_names))) None
    & info [ "i"; "impl" ] ~docv:"IMPL" ~doc)

let threads_arg =
  Arg.(value & opt int 2 & info [ "t"; "threads" ] ~docv:"N" ~doc:"Domains.")

let ops_arg =
  Arg.(
    value & opt int 20_000
    & info [ "n"; "ops" ] ~docv:"N" ~doc:"Operations per thread.")

let slack_arg =
  Arg.(
    value & opt int 10
    & info [ "x"; "slack" ] ~docv:"X"
        ~doc:"Futures allowed outstanding before forcing them all.")

let repeats_arg =
  Arg.(value & opt int 3 & info [ "r"; "repeats" ] ~docv:"N" ~doc:"Repeats.")

let measure_stack impl ~threads ~ops ~slack ~repeats =
  Workload.Runner.run ~threads ~repeats ~ops_per_thread:ops
    ~setup:impl.R.s_make
    ~worker:(fun inst ~thread ~ops ->
      let o = inst.R.s_handle () in
      let rng = Workload.Rng.create ~seed:1 ~stream:thread in
      let sl = Fl.Slack.create slack in
      for _ = 1 to ops do
        match Workload.Distribution.stack_op rng with
        | Workload.Distribution.Push v ->
            let f = o.R.s_push v in
            Fl.Slack.note sl (fun () -> Future.force f)
        | Workload.Distribution.Pop ->
            let f = o.R.s_pop () in
            Fl.Slack.note sl (fun () -> ignore (Future.force f))
      done;
      Fl.Slack.drain sl;
      o.R.s_flush ())
    ~cas_total:(fun i -> i.R.s_cas_count ())
    ~teardown:(fun i -> i.R.s_drain ())
    ()

let measure_queue impl ~threads ~ops ~slack ~repeats =
  Workload.Runner.run ~threads ~repeats ~ops_per_thread:ops
    ~setup:impl.R.q_make
    ~worker:(fun inst ~thread ~ops ->
      let o = inst.R.q_handle () in
      let rng = Workload.Rng.create ~seed:1 ~stream:thread in
      let sl = Fl.Slack.create slack in
      for _ = 1 to ops do
        match Workload.Distribution.queue_op rng with
        | Workload.Distribution.Enq v ->
            let f = o.R.q_enq v in
            Fl.Slack.note sl (fun () -> Future.force f)
        | Workload.Distribution.Deq ->
            let f = o.R.q_deq () in
            Fl.Slack.note sl (fun () -> ignore (Future.force f))
      done;
      Fl.Slack.drain sl;
      o.R.q_flush ())
    ~cas_total:(fun i -> i.R.q_cas_count ())
    ~teardown:(fun i -> i.R.q_drain ())
    ()

let measure_list impl ~threads ~ops ~slack ~repeats =
  let key_range = Workload.Distribution.default_key_range in
  Workload.Runner.run ~threads ~repeats ~ops_per_thread:ops
    ~setup:(fun () ->
      let inst = impl.R.l_make () in
      let o = inst.R.l_handle () in
      (* Insert in ascending order so every implementation starts from the
         same node layout; combining-based implementations would otherwise
         get a cache-locality head start from their own bulk prefill. *)
      let keys =
        List.sort compare
          (Workload.Distribution.initial_keys ~key_range ~seed:2014 ())
      in
      let fs = List.map (fun k -> o.R.l_insert k) keys in
      o.R.l_flush ();
      inst.R.l_drain ();
      List.iter (fun f -> ignore (Future.force f)) fs;
      inst)
    ~worker:(fun inst ~thread ~ops ->
      let o = inst.R.l_handle () in
      let rng = Workload.Rng.create ~seed:1 ~stream:thread in
      let sl = Fl.Slack.create slack in
      for _ = 1 to ops do
        let note f = Fl.Slack.note sl (fun () -> ignore (Future.force f)) in
        match Workload.Distribution.list_op ~key_range rng with
        | Workload.Distribution.Insert k -> note (o.R.l_insert k)
        | Workload.Distribution.Remove k -> note (o.R.l_remove k)
        | Workload.Distribution.Contains k -> note (o.R.l_contains k)
      done;
      Fl.Slack.drain sl;
      o.R.l_flush ())
    ~cas_total:(fun i -> i.R.l_cas_count ())
    ~teardown:(fun i -> i.R.l_drain ())
    ()

let run_cmd =
  let doc = "Run one benchmark configuration and print the measurement." in
  let run structure impl threads ops slack repeats =
    let m =
      try
        match structure with
      | "stack" ->
          measure_stack (R.find_stack impl) ~threads ~ops ~slack ~repeats
      | "queue" ->
          measure_queue (R.find_queue impl) ~threads ~ops ~slack ~repeats
        | "list" ->
            measure_list (R.find_set impl) ~threads ~ops ~slack ~repeats
        | _ -> assert false
      with Not_found ->
        Printf.eprintf "error: %s has no %s implementation\n" structure impl;
        exit 2
    in
    Printf.printf
      "%s/%s threads=%d ops=%d slack=%d: %s mean (+/- %s), %.0f ops/s, %.2f \
       CAS/op\n"
      structure impl threads ops slack
      (Workload.Report.seconds m.Workload.Runner.seconds)
      (Workload.Report.seconds m.Workload.Runner.std_dev)
      m.Workload.Runner.throughput m.Workload.Runner.cas_per_op
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ structure_arg $ impl_arg $ threads_arg $ ops_arg $ slack_arg
      $ repeats_arg)

(* ------------------------------ check ------------------------------- *)

let rounds_arg =
  Arg.(
    value & opt int 10
    & info [ "rounds" ] ~docv:"N" ~doc:"Recorded rounds to verify.")

let check_cmd =
  let doc =
    "Record concurrent executions and verify them against the \
     implementation's futures-linearizability condition."
  in
  let run structure impl rounds =
    let outcome =
      try
        match structure with
        | "stack" -> Conformance.check_stack ~rounds (R.find_stack impl)
        | "queue" -> Conformance.check_queue ~rounds (R.find_queue impl)
        | "list" -> Conformance.check_set ~rounds (R.find_set impl)
        | _ -> assert false
      with Not_found ->
        Printf.eprintf "error: %s has no %s implementation\n" structure impl;
        exit 2
    in
    match outcome.Conformance.first_failure with
    | None ->
        Printf.printf "%s/%s: %d rounds, all %s-FL\n" structure impl rounds
          (Lin.Order.condition_name (Conformance.claimed_condition impl))
    | Some history ->
        print_endline history;
        Printf.printf "%s/%s: %d/%d rounds FAILED\n" structure impl
          outcome.Conformance.violations rounds;
        exit 1
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(const run $ structure_arg $ impl_arg $ rounds_arg)

(* ------------------------------ fuzz -------------------------------- *)

let fuzz_target_names = List.map (fun t -> t.Fuzz.Exec.name) Fuzz.Exec.targets

let fuzz_targets_arg =
  let doc =
    "Target to fuzz (repeatable; default all). One of: "
    ^ String.concat ", " fuzz_target_names ^ "."
  in
  Arg.(value & opt_all string [] & info [ "target" ] ~docv:"TARGET" ~doc)

let fuzz_seed_arg =
  Arg.(
    value & opt int 2014
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Campaign seed. Same seed, same programs, same perturbation \
           plans, same verdicts.")

let fuzz_iters_arg =
  Arg.(
    value & opt int 20
    & info [ "iters" ] ~docv:"N" ~doc:"Iterations per target.")

let fuzz_budget_arg =
  Arg.(
    value & opt float 0.
    & info [ "budget" ] ~docv:"SECS"
        ~doc:
          "Wall-clock budget per target (0 = none); stops the iteration \
           loop when exceeded.")

let fuzz_condition_arg =
  let conds =
    [ ("strong", Lin.Order.Strong); ("medium", Lin.Order.Medium);
      ("weak", Lin.Order.Weak); ("fsc", Lin.Order.Fsc) ]
  in
  let doc =
    "Override the checked condition (strong, medium, weak, fsc). The \
     acceptance gauntlet runs an intentionally-too-strong check, e.g. \
     --target stack/weak --condition medium."
  in
  Arg.(
    value & opt (some (enum conds)) None
    & info [ "condition" ] ~docv:"COND" ~doc)

let fuzz_threads_arg =
  Arg.(
    value & opt int 0
    & info [ "threads" ] ~docv:"N" ~doc:"Program threads (0 = default 3).")

let fuzz_phases_arg =
  Arg.(
    value & opt int 0
    & info [ "phases" ] ~docv:"N" ~doc:"Program phases (0 = default 2).")

let fuzz_steps_arg =
  Arg.(
    value & opt int 0
    & info [ "steps" ] ~docv:"N"
        ~doc:"Steps per thread per phase (0 = default 5).")

let fuzz_mega_arg =
  Arg.(
    value & opt int 0
    & info [ "mega" ] ~docv:"STEPS"
        ~doc:
          "Steps per thread for mega targets (0 = default 2000). Mega \
           targets are named mega/<stack|queue>/<impl>[@SEED]: one \
           uncapped single-phase program whose recorded history is \
           certified by the streaming monitor instead of the exact \
           checker; the optional @SEED corrupts the history \
           deterministically and expects a rejection.")

let fuzz_out_arg =
  Arg.(
    value
    & opt string Fuzz.Driver.default_out_dir
    & info [ "out" ] ~docv:"DIR" ~doc:"Directory for .repro files.")

let fuzz_replay_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:
          "Re-execute a saved .repro byte-for-byte instead of fuzzing. \
           Exits 0 when the recorded violation reproduces, 1 when it no \
           longer does, 2 on a malformed file.")

let sanitize name =
  String.map (function '/' -> '-' | c -> c) name

let fuzz_cmd =
  let doc =
    "Fuzz the structures for futures-linearizability violations: random \
     op programs under seeded schedule-perturbation plans, recorded \
     histories checked against each target's claimed condition, failures \
     shrunk to a minimal .repro."
  in
  let run targets seed iters budget condition threads phases steps mega out
      replay =
    let die msg =
      Printf.eprintf "error: %s\n" msg;
      exit 2
    in
    match replay with
    | Some path -> (
        let repro =
          try Fuzz.Repro.load path
          with Invalid_argument msg | Sys_error msg -> die msg
        in
        if Fuzz.Mega.is_mega_name repro.Fuzz.Repro.target then begin
          let _, out =
            try Fuzz.Mega.replay path
            with Invalid_argument msg | Sys_error msg -> die msg
          in
          match out.Fuzz.Mega.verdict with
          | Lin.Stream.Reject { index; reason } ->
              print_endline reason;
              Printf.printf
                "replay %s: streaming violation reproduced at event %d \
                 (%d ops)\n"
                path index out.Fuzz.Mega.ops
          | Lin.Stream.Accept ->
              Printf.printf
                "replay %s: PASSED — the recorded violation did not \
                 reproduce (%d ops)\n"
                path out.Fuzz.Mega.ops;
              exit 1
        end
        else
          let r, out =
            try Fuzz.Driver.replay path
            with Invalid_argument msg | Sys_error msg -> die msg
          in
          match out.Fuzz.Exec.verdict with
          | Fuzz.Exec.Violation msg ->
              print_endline msg;
              Printf.printf
                "replay %s: violation of %s reproduced (%d ops)\n" path
                (Lin.Order.condition_name r.Fuzz.Repro.condition)
                out.Fuzz.Exec.ops
          | Fuzz.Exec.Pass ->
              Printf.printf
                "replay %s: PASSED — the recorded violation did not \
                 reproduce (%d ops)\n"
                path out.Fuzz.Exec.ops;
              exit 1)
    | None ->
        let names = if targets = [] then fuzz_target_names else targets in
        let mega_names, exec_names =
          List.partition Fuzz.Mega.is_mega_name names
        in
        let ts =
          List.map
            (fun n ->
              try Fuzz.Exec.find n
              with Invalid_argument msg -> die msg)
            exec_names
        in
        let size =
          let d = Fuzz.Program.default_size in
          Fuzz.Program.cap
            {
              Fuzz.Program.threads =
                (if threads > 0 then threads else d.Fuzz.Program.threads);
              phases = (if phases > 0 then phases else d.Fuzz.Program.phases);
              steps = (if steps > 0 then steps else d.Fuzz.Program.steps);
            }
        in
        let budget = if budget > 0. then budget else infinity in
        let multi = List.length names > 1 in
        let failed = ref false in
        List.iter
          (fun name ->
            let t =
              try Fuzz.Mega.target_of_string name
              with Invalid_argument msg -> die msg
            in
            let file =
              if multi then
                Some (Printf.sprintf "%d-%s.repro" seed (sanitize name))
              else None
            in
            let r =
              Fuzz.Mega.fuzz
                ~threads:(if threads > 0 then threads else 3)
                ~steps:(if mega > 0 then mega else 2000)
                ?condition ~iters ~out_dir:out ?file ~seed t
            in
            match r.Fuzz.Mega.first_failure with
            | None ->
                Printf.printf
                  "fuzz %-14s [%s]: %d iters, %d ops, ok \
                   (streaming-certified)\n"
                  r.Fuzz.Mega.target
                  (Lin.Order.condition_name r.Fuzz.Mega.condition)
                  r.Fuzz.Mega.iters r.Fuzz.Mega.total_ops
            | Some msg ->
                failed := true;
                print_endline msg;
                Printf.printf
                  "fuzz %s [%s]: VIOLATION at iter %d — shrunk to %d ops, \
                   violating event %s, repro: %s\n"
                  r.Fuzz.Mega.target
                  (Lin.Order.condition_name r.Fuzz.Mega.condition)
                  r.Fuzz.Mega.iters
                  (Option.value ~default:0 r.Fuzz.Mega.shrunk_ops)
                  (match r.Fuzz.Mega.violating_index with
                  | Some i -> string_of_int i
                  | None -> "?")
                  (Option.value ~default:"?" r.Fuzz.Mega.repro_path))
          mega_names;
        List.iter
          (fun t ->
            let file =
              if multi then
                Some (Printf.sprintf "%d-%s.repro" seed (sanitize t.Fuzz.Exec.name))
              else None
            in
            let r =
              Fuzz.Driver.fuzz ~size ?condition ~iters ~budget ~out_dir:out
                ?file ~seed t
            in
            (match r.Fuzz.Driver.first_failure with
            | None ->
                Printf.printf "fuzz %-14s [%s]: %d iters, %d ops, ok%s\n"
                  r.Fuzz.Driver.target
                  (Lin.Order.condition_name r.Fuzz.Driver.condition)
                  r.Fuzz.Driver.iters r.Fuzz.Driver.total_ops
                  (if r.Fuzz.Driver.fsc_witnesses > 0 then
                     Printf.sprintf " (%d Figure-3 Fsc witnesses)"
                       r.Fuzz.Driver.fsc_witnesses
                   else "")
            | Some msg ->
                failed := true;
                print_endline msg;
                Printf.printf
                  "fuzz %s [%s]: VIOLATION at iter %d — shrunk to %d ops / \
                   %d plan steps, repro: %s\n"
                  r.Fuzz.Driver.target
                  (Lin.Order.condition_name r.Fuzz.Driver.condition)
                  r.Fuzz.Driver.iters
                  (Option.value ~default:0 r.Fuzz.Driver.shrunk_ops)
                  (Option.value ~default:0 r.Fuzz.Driver.shrunk_plan)
                  (Option.value ~default:"?" r.Fuzz.Driver.repro_path)))
          ts;
        if !failed then exit 1
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const run $ fuzz_targets_arg $ fuzz_seed_arg $ fuzz_iters_arg
      $ fuzz_budget_arg $ fuzz_condition_arg $ fuzz_threads_arg
      $ fuzz_phases_arg $ fuzz_steps_arg $ fuzz_mega_arg $ fuzz_out_arg
      $ fuzz_replay_arg)

let () =
  let doc = "Futures-based shared data structures (PODC 2014 reproduction)." in
  let info = Cmd.info "flbench" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; check_cmd; fuzz_cmd ]))
