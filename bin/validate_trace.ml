(* validate_trace — schema check for the Chrome trace_event JSON the obs
   flight recorder exports (CI's obs-smoke job runs this on a fresh
   trace). Verifies:

     - the file is non-empty, well-formed JSON with a non-empty
       traceEvents array ([--min-events N] raises the floor);
     - every event carries name (non-empty string), ph = "i", a finite
       non-negative ts, and integer pid/tid;
     - events are sorted by ts (the exporter merges per-domain rings);
     - [--min-domains N]: at least N distinct tids appear;
     - [--require PREFIX] (repeatable): some event name starts with
       PREFIX;
     - shard transfer pairing: every [shard.ship] is eventually matched
       (per bucket, in ts order) by a [shard.ack] or a [shard.recover],
       and no [shard.ack] appears without an outstanding ship — a
       shipped window that is neither applied nor recovered is exactly
       the lost-update bug the protocol exists to prevent;
     - [--min-transfers N]: at least N completed transfers
       ([shard.ack] events) appear — the CI shard smoke's proof that
       the run actually exercised the protocol.

   Exits 0 with a summary on success, 1 with a diagnostic on the first
   violation. The parser is hand-rolled: the repo deliberately has no
   JSON dependency. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "offset %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' -> (
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 128 -> Buffer.add_char b (Char.chr code)
            | Some _ ->
                (* Non-ASCII code point: validity, not the exact text,
                   is what matters here. *)
                Buffer.add_char b '?'
            | None -> fail "malformed \\u escape")
        | _ -> fail "unknown escape");
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a value";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing content after document";
  v

let () =
  let file = ref None in
  let min_domains = ref 1 in
  let min_events = ref 1 in
  let min_transfers = ref 0 in
  let required = ref [] in
  let usage () =
    prerr_endline
      "usage: validate_trace FILE [--min-domains N] [--min-events N] \
       [--min-transfers N] [--require PREFIX]...";
    exit 2
  in
  let rec parse_args = function
    | [] -> ()
    | "--min-domains" :: v :: rest ->
        (match int_of_string_opt v with
        | Some m -> min_domains := m
        | None -> usage ());
        parse_args rest
    | "--min-events" :: v :: rest ->
        (match int_of_string_opt v with
        | Some m when m >= 1 -> min_events := m
        | _ -> usage ());
        parse_args rest
    | "--min-transfers" :: v :: rest ->
        (match int_of_string_opt v with
        | Some m when m >= 0 -> min_transfers := m
        | _ -> usage ());
        parse_args rest
    | "--require" :: p :: rest ->
        required := p :: !required;
        parse_args rest
    | a :: rest when !file = None && String.length a > 0 && a.[0] <> '-' ->
        file := Some a;
        parse_args rest
    | _ -> usage ()
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let file = match !file with Some f -> f | None -> usage () in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.eprintf "%s: %s\n" file m;
        exit 1)
      fmt
  in
  let contents =
    try In_channel.with_open_bin file In_channel.input_all
    with Sys_error m -> fail "%s" m
  in
  (* An empty capture must fail loudly, not vacuously pass or drown in a
     generic parse diagnostic: a recorder that exported nothing is the
     failure this tool exists to catch. *)
  if String.trim contents = "" then
    fail "empty trace file (%d bytes) — the recorder exported nothing"
      (String.length contents);
  let doc = try parse contents with Bad m -> fail "invalid JSON (%s)" m in
  let top =
    match doc with Obj kvs -> kvs | _ -> fail "top level is not an object"
  in
  let events =
    match List.assoc_opt "traceEvents" top with
    | Some (Arr evs) -> evs
    | Some _ -> fail "traceEvents is not an array"
    | None -> fail "missing traceEvents"
  in
  if events = [] then fail "traceEvents is empty";
  if List.length events < !min_events then
    fail "only %d event(s), need at least %d" (List.length events)
      !min_events;
  let tids = Hashtbl.create 8 in
  let last_ts = ref neg_infinity in
  (* Outstanding shipped windows per bucket, and completed transfers
     (acks), maintained in ts order across the merged per-domain rings:
     the ship fires on the granter's domain, the ack on the requester's. *)
  let ships : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let transfers = ref 0 in
  List.iteri
    (fun idx ev ->
      let obj =
        match ev with
        | Obj kvs -> kvs
        | _ -> fail "event %d is not an object" idx
      in
      let str k =
        match List.assoc_opt k obj with
        | Some (Str v) -> v
        | _ -> fail "event %d: missing or non-string %S" idx k
      in
      let num k =
        match List.assoc_opt k obj with
        | Some (Num v) -> v
        | _ -> fail "event %d: missing or non-number %S" idx k
      in
      let name = str "name" in
      if name = "" then fail "event %d: empty name" idx;
      if str "ph" <> "i" then fail "event %d: ph is not \"i\"" idx;
      let ts = num "ts" in
      if not (Float.is_finite ts) || ts < 0.0 then
        fail "event %d: ts is not a finite non-negative number" idx;
      if ts < !last_ts then fail "event %d: not sorted by ts" idx;
      last_ts := ts;
      let integral k =
        let v = num k in
        if Float.rem v 1.0 <> 0.0 then fail "event %d: %S not an integer" idx k;
        v
      in
      ignore (integral "pid" : float);
      Hashtbl.replace tids (integral "tid") ();
      if name = "shard.ship" || name = "shard.ack" || name = "shard.recover"
      then begin
        let bucket =
          match List.assoc_opt "args" obj with
          | Some (Obj akvs) -> (
              match List.assoc_opt "bucket" akvs with
              | Some (Num b) when Float.rem b 1.0 = 0.0 -> int_of_float b
              | _ -> fail "event %d: %s without integer args.bucket" idx name)
          | _ -> fail "event %d: %s without args" idx name
        in
        let outstanding =
          Option.value (Hashtbl.find_opt ships bucket) ~default:0
        in
        match name with
        | "shard.ship" -> Hashtbl.replace ships bucket (outstanding + 1)
        | "shard.ack" ->
            if outstanding = 0 then
              fail "event %d: shard.ack on bucket %d with no outstanding ship"
                idx bucket;
            incr transfers;
            Hashtbl.replace ships bucket (outstanding - 1)
        | _ ->
            (* shard.recover: settles the lost in-flight window, if one
               was shipped; a recover of a merely-expired lease is not a
               pairing event. *)
            if outstanding > 0 then Hashtbl.replace ships bucket (outstanding - 1)
      end)
    events;
  let domains = Hashtbl.length tids in
  if domains < !min_domains then
    fail "only %d distinct tid(s), need at least %d" domains !min_domains;
  Hashtbl.iter
    (fun bucket k ->
      if k > 0 then
        fail
          "bucket %d: %d shipped window(s) with no matching shard.ack or \
           shard.recover"
          bucket k)
    ships;
  if !transfers < !min_transfers then
    fail "only %d completed transfer(s) (shard.ack), need at least %d"
      !transfers !min_transfers;
  List.iter
    (fun p ->
      let found =
        List.exists
          (function
            | Obj kvs -> (
                match List.assoc_opt "name" kvs with
                | Some (Str nm) -> String.starts_with ~prefix:p nm
                | _ -> false)
            | _ -> false)
          events
      in
      if not found then fail "no event with name prefix %S" p)
    (List.rev !required);
  Printf.printf "%s: OK (%d events, %d domain(s), %d transfer(s))\n" file
    (List.length events) domains !transfers
