(* validate_trace — schema and conformance check for the Chrome
   trace_event JSON the obs flight recorder exports (CI's obs-smoke and
   conformance-smoke jobs run this on fresh traces).

   The parser is line-oriented and streaming: the exporter writes one
   event per line, so the file is validated a line at a time — a
   million-event trace is checked in constant memory per event, and
   every diagnostic carries the line it came from. In particular a
   truncated capture (end of file in the middle of the traceEvents
   array, or a half-written event line) fails with a per-line
   diagnostic instead of a vacuous pass or a whole-file parse error.

   Schema checks:

     - the file is non-empty and shaped like the exporter's output: a
       `{` line, header fields (fldsDropped is read if present), one
       `"traceEvents": [` line, one event object per line, `]` and `}`;
     - every event carries name (non-empty string), ph = "i", a finite
       non-negative ts, and integer pid/tid;
     - events are sorted by ts (the exporter merges per-domain rings);
     - [--min-events N] / [--min-domains N]: floors on events and
       distinct tids;
     - [--require PREFIX] (repeatable): some event name starts with
       PREFIX;
     - shard transfer pairing: every [shard.ship] is eventually matched
       (per bucket, in ts order) by a [shard.ack] or a [shard.recover],
       and no [shard.ack] appears without an outstanding ship — a
       shipped window that is neither applied nor recovered is exactly
       the lost-update bug the protocol exists to prevent;
     - [--min-transfers N]: at least N completed transfers.

   [--conformance] additionally replays the completed-operation events
   (op.enq / op.deq / op.deq.empty and the stack trio) through one
   {!Lin.Stream} monitor per (family, object id), in timestamp order —
   each event's effect interval is [ts - dur_ns, ts]. The first
   violation is reported with its event index, line and reason. A trace
   whose rings dropped events (fldsDropped > 0) is refused in this mode
   unless [--allow-dropped] is given: an incomplete history can be
   scanned but never certified.

   Exits 0 with a summary on success, 1 with a diagnostic on the first
   violation. The JSON value parser is hand-rolled: the repo
   deliberately has no JSON dependency. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "offset %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' -> (
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 128 -> Buffer.add_char b (Char.chr code)
            | Some _ ->
                (* Non-ASCII code point: validity, not the exact text,
                   is what matters here. *)
                Buffer.add_char b '?'
            | None -> fail "malformed \\u escape")
        | _ -> fail "unknown escape");
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a value";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing content on the line";
  v

(* ----------------------- conformance monitors ----------------------- *)

(* One Lin.Stream monitor per (family, object id). Queue and stack
   events share the 0..63 object-id space but are different structures,
   so the family is part of the key. *)
module S = Lin.Stream

type mon = { family : S.family; obj : int; m : S.t }

let () =
  let file = ref None in
  let min_domains = ref 1 in
  let min_events = ref 1 in
  let min_transfers = ref 0 in
  let required = ref [] in
  let conformance = ref false in
  let allow_dropped = ref false in
  let usage () =
    prerr_endline
      "usage: validate_trace FILE [--min-domains N] [--min-events N] \
       [--min-transfers N] [--require PREFIX]... [--conformance] \
       [--allow-dropped]";
    exit 2
  in
  let rec parse_args = function
    | [] -> ()
    | "--min-domains" :: v :: rest ->
        (match int_of_string_opt v with
        | Some m -> min_domains := m
        | None -> usage ());
        parse_args rest
    | "--min-events" :: v :: rest ->
        (match int_of_string_opt v with
        | Some m when m >= 1 -> min_events := m
        | _ -> usage ());
        parse_args rest
    | "--min-transfers" :: v :: rest ->
        (match int_of_string_opt v with
        | Some m when m >= 0 -> min_transfers := m
        | _ -> usage ());
        parse_args rest
    | "--require" :: p :: rest ->
        required := p :: !required;
        parse_args rest
    | "--conformance" :: rest ->
        conformance := true;
        parse_args rest
    | "--allow-dropped" :: rest ->
        allow_dropped := true;
        parse_args rest
    | a :: rest when !file = None && String.length a > 0 && a.[0] <> '-' ->
        file := Some a;
        parse_args rest
    | _ -> usage ()
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let file = match !file with Some f -> f | None -> usage () in
  let line_no = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.eprintf "%s:%d: %s\n" file !line_no m;
        exit 1)
      fmt
  in
  let ic = try open_in_bin file with Sys_error m -> fail "%s" m in
  let next_line () =
    match input_line ic with
    | l ->
        incr line_no;
        Some l
    | exception End_of_file -> None
  in
  (* Skip blank lines (the exporter writes one before `]` when the
     trace is empty). *)
  let rec next_content () =
    match next_line () with
    | None -> None
    | Some l -> if String.trim l = "" then next_content () else Some l
  in
  (* ---------------------------- header ----------------------------- *)
  (match next_content () with
  | None -> fail "empty trace file — the recorder exported nothing"
  | Some l when String.trim l = "{" -> ()
  | Some _ -> fail "expected the opening '{' of the trace document");
  let dropped = ref 0 in
  let rec header () =
    match next_content () with
    | None -> fail "truncated trace — end of file before \"traceEvents\""
    | Some l ->
        let t = String.trim l in
        if t = "\"traceEvents\": [" || t = "\"traceEvents\":[" then ()
        else begin
          (* A header field line: `"key": value,` — parsed as a
             one-entry object so malformed headers get a line-anchored
             diagnostic. *)
          let t =
            if String.length t > 0 && t.[String.length t - 1] = ',' then
              String.sub t 0 (String.length t - 1)
            else t
          in
          (match parse ("{" ^ t ^ "}") with
          | Obj [ ("fldsDropped", Num d) ] when Float.rem d 1.0 = 0.0 ->
              dropped := int_of_float d
          | Obj [ (_, _) ] -> ()
          | _ -> fail "malformed header field"
          | exception Bad m -> fail "malformed header field (%s)" m);
          header ()
        end
  in
  header ();
  (* ---------------------------- events ----------------------------- *)
  let tids = Hashtbl.create 8 in
  let last_ts = ref neg_infinity in
  let n_events = ref 0 in
  (* Outstanding shipped windows per bucket, and completed transfers
     (acks), maintained in ts order across the merged per-domain rings:
     the ship fires on the granter's domain, the ack on the requester's. *)
  let ships : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let transfers = ref 0 in
  let matched = Array.make (List.length !required) false in
  let req_prefixes = Array.of_list (List.rev !required) in
  (* Conformance state: monitors keyed by (family, obj); the line each
     feed index came from, for violation reports. *)
  let monitors : (int, mon) Hashtbl.t = Hashtbl.create 8 in
  let op_events = ref 0 in
  let op_lines : (int, int) Hashtbl.t = Hashtbl.create 997 in
  let monitor family obj =
    let key = (if family = S.Fifo then 0 else 64) lor obj in
    match Hashtbl.find_opt monitors key with
    | Some mn -> mn.m
    | None ->
        let mn = { family; obj; m = S.create family } in
        Hashtbl.add monitors key mn;
        mn.m
  in
  let handle_op idx name obj_of =
    let args k =
      match obj_of k with
      | Some (Num v) when Float.rem v 1.0 = 0.0 -> int_of_float v
      | _ -> fail "event %d: %s without integer args.%s" idx name k
    in
    let family, ev =
      match name with
      | "op.enq" -> (S.Fifo, S.Add (args "value"))
      | "op.deq" -> (S.Fifo, S.Remove (args "value"))
      | "op.deq.empty" -> (S.Fifo, S.Remove_empty)
      | "op.push" -> (S.Lifo, S.Add (args "value"))
      | "op.pop" -> (S.Lifo, S.Remove (args "value"))
      | "op.pop.empty" -> (S.Lifo, S.Remove_empty)
      | _ -> assert false
    in
    let obj = args "obj" in
    if obj < 0 || obj > 63 then
      fail "event %d: %s with out-of-range args.obj %d" idx name obj;
    let dur = args "dur_ns" in
    if dur < 0 then fail "event %d: %s with negative args.dur_ns" idx name;
    (* ts in the file is microseconds with the ns kept in a 3-digit
       fraction; recover the integer nanosecond stamp. *)
    let stop = int_of_float ((!last_ts *. 1000.0) +. 0.5) in
    incr op_events;
    Hashtbl.replace op_lines idx !line_no;
    try S.feed (monitor family obj) ~index:idx ~start:(stop - dur) ~stop ev
    with Invalid_argument m -> fail "event %d: %s" idx m
  in
  let handle_event idx line =
    let ev =
      match parse line with
      | v -> v
      | exception Bad m ->
          fail "malformed event (%s) — truncated capture?" m
    in
    let obj =
      match ev with Obj kvs -> kvs | _ -> fail "event %d is not an object" idx
    in
    let str k =
      match List.assoc_opt k obj with
      | Some (Str v) -> v
      | _ -> fail "event %d: missing or non-string %S" idx k
    in
    let num k =
      match List.assoc_opt k obj with
      | Some (Num v) -> v
      | _ -> fail "event %d: missing or non-number %S" idx k
    in
    let name = str "name" in
    if name = "" then fail "event %d: empty name" idx;
    if str "ph" <> "i" then fail "event %d: ph is not \"i\"" idx;
    let ts = num "ts" in
    if not (Float.is_finite ts) || ts < 0.0 then
      fail "event %d: ts is not a finite non-negative number" idx;
    if ts < !last_ts then fail "event %d: not sorted by ts" idx;
    last_ts := ts;
    let integral k =
      let v = num k in
      if Float.rem v 1.0 <> 0.0 then fail "event %d: %S not an integer" idx k;
      v
    in
    ignore (integral "pid" : float);
    Hashtbl.replace tids (integral "tid") ();
    Array.iteri
      (fun i p ->
        if (not matched.(i)) && String.starts_with ~prefix:p name then
          matched.(i) <- true)
      req_prefixes;
    let arg k =
      match List.assoc_opt "args" obj with
      | Some (Obj akvs) -> List.assoc_opt k akvs
      | _ -> None
    in
    if name = "shard.ship" || name = "shard.ack" || name = "shard.recover"
    then begin
      let bucket =
        match arg "bucket" with
        | Some (Num b) when Float.rem b 1.0 = 0.0 -> int_of_float b
        | _ -> fail "event %d: %s without integer args.bucket" idx name
      in
      let outstanding =
        Option.value (Hashtbl.find_opt ships bucket) ~default:0
      in
      match name with
      | "shard.ship" -> Hashtbl.replace ships bucket (outstanding + 1)
      | "shard.ack" ->
          if outstanding = 0 then
            fail "event %d: shard.ack on bucket %d with no outstanding ship"
              idx bucket;
          incr transfers;
          Hashtbl.replace ships bucket (outstanding - 1)
      | _ ->
          (* shard.recover: settles the lost in-flight window, if one
             was shipped; a recover of a merely-expired lease is not a
             pairing event. *)
          if outstanding > 0 then Hashtbl.replace ships bucket (outstanding - 1)
    end;
    if
      !conformance
      && (String.length name > 3 && String.sub name 0 3 = "op.")
      && (name = "op.enq" || name = "op.deq" || name = "op.deq.empty"
         || name = "op.push" || name = "op.pop" || name = "op.pop.empty")
    then handle_op idx name arg
  in
  (* Each line inside the array is an event object (with a trailing
     comma on all but the last), until the closing `]`. Running out of
     file here is the truncation this tool exists to catch. *)
  let rec events () =
    match next_content () with
    | None ->
        fail
          "truncated trace — end of file inside traceEvents (%d event(s) \
           parsed so far)"
          !n_events
    | Some l ->
        let t = String.trim l in
        if t = "]" then ()
        else begin
          let t =
            if String.length t > 0 && t.[String.length t - 1] = ',' then
              String.sub t 0 (String.length t - 1)
            else t
          in
          handle_event !n_events t;
          incr n_events;
          events ()
        end
  in
  events ();
  (match next_content () with
  | Some l when String.trim l = "}" -> ()
  | Some _ -> fail "expected the closing '}' of the trace document"
  | None ->
      fail "truncated trace — end of file after traceEvents, before '}'");
  (match next_content () with
  | None -> ()
  | Some _ -> fail "trailing content after the trace document");
  close_in ic;
  (* --------------------------- verdicts ----------------------------- *)
  if !n_events = 0 then fail "traceEvents is empty";
  if !n_events < !min_events then
    fail "only %d event(s), need at least %d" !n_events !min_events;
  let domains = Hashtbl.length tids in
  if domains < !min_domains then
    fail "only %d distinct tid(s), need at least %d" domains !min_domains;
  Hashtbl.iter
    (fun bucket k ->
      if k > 0 then
        fail
          "bucket %d: %d shipped window(s) with no matching shard.ack or \
           shard.recover"
          bucket k)
    ships;
  if !transfers < !min_transfers then
    fail "only %d completed transfer(s) (shard.ack), need at least %d"
      !transfers !min_transfers;
  Array.iteri
    (fun i ok ->
      if not ok then fail "no event with name prefix %S" req_prefixes.(i))
    matched;
  let conf_summary =
    if not !conformance then ""
    else begin
      if !dropped > 0 && not !allow_dropped then begin
        Printf.eprintf
          "%s: %d event(s) dropped by the flight-recorder rings — an \
           incomplete history cannot be certified (--allow-dropped to scan \
           anyway)\n"
          file !dropped;
        exit 1
      end;
      (* Finalize every monitor; report the violation with the smallest
         feed index (deterministic — matches the monitor's own
         tie-break). *)
      let worst = ref None in
      Hashtbl.iter
        (fun _ mn ->
          match S.finalize mn.m with
          | S.Accept -> ()
          | S.Reject { index; reason } -> (
              match !worst with
              | Some (i, _, _) when i <= index -> ()
              | _ -> worst := Some (index, reason, mn)))
        monitors;
      (match !worst with
      | Some (index, reason, mn) ->
          let line =
            Option.value (Hashtbl.find_opt op_lines index) ~default:0
          in
          Printf.eprintf
            "%s:%d: conformance violation at event %d (%s object %d): %s\n"
            file line index
            (match mn.family with S.Fifo -> "queue" | S.Lifo -> "stack")
            mn.obj reason;
          exit 1
      | None -> ());
      Printf.sprintf ", %d op event(s) certified over %d monitor(s)"
        !op_events (Hashtbl.length monitors)
    end
  in
  Printf.printf "%s: OK (%d events, %d domain(s), %d transfer(s)%s)\n" file
    !n_events domains !transfers conf_summary
