(* Bulk-loading and querying a weak-FL linked-list set.

   Run with:  dune exec examples/batch_set.exe -- [keys] [queries]

   A linked-list set costs a full traversal per operation, so batching
   matters: the weak-FL list applies a whole batch of pending operations
   in ONE traversal (pending operations are kept sorted by key), while the
   lock-free baseline pays one traversal per operation. This example
   loads the same random key set into both and compares wall-clock time
   and CAS counts, then runs a mixed query batch. *)

module Future = Futures.Future

module Int_key = struct
  type t = int

  let compare = Int.compare
end

module Harris = Lockfree.Harris_list.Make (Int_key)
module WL = Fl.Weak_list.Make (Int_key)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let arg n default =
    if Array.length Sys.argv > n then int_of_string Sys.argv.(n) else default
  in
  let n_keys = arg 1 4_000 in
  let n_queries = arg 2 4_000 in
  let range = n_keys * 2 in
  let rng = Workload.Rng.create ~seed:7 ~stream:0 in
  let keys = List.init n_keys (fun _ -> Workload.Rng.below rng range) in
  let queries = List.init n_queries (fun _ -> Workload.Rng.below rng range) in

  (* Lock-free baseline: one traversal per insert. *)
  let baseline = Harris.create () in
  let (), t_base =
    time (fun () -> List.iter (fun k -> ignore (Harris.insert baseline k)) keys)
  in

  (* Weak-FL: buffer everything, then one flush = one traversal. *)
  let wl = WL.create () in
  let h = WL.handle wl in
  let (), t_weak =
    time (fun () ->
        let fs = List.map (fun k -> WL.insert h k) keys in
        WL.flush h;
        List.iter (fun f -> ignore (Future.force f)) fs)
  in
  Printf.printf "bulk load of %d keys:\n" n_keys;
  Printf.printf "  lock-free  %.1f ms  (%d CAS)\n" (t_base *. 1000.0)
    (Harris.cas_count baseline);
  Printf.printf "  weak-FL    %.1f ms  (%d CAS)  speedup x%.1f\n"
    (t_weak *. 1000.0)
    (Harris.cas_count (WL.shared wl))
    (t_base /. t_weak);
  assert (Harris.to_list baseline = Harris.to_list (WL.shared wl));

  (* Mixed query batch: 60% contains / 20% insert / 20% remove. *)
  let run_queries_baseline () =
    List.iter
      (fun k ->
        match k mod 5 with
        | 0 -> ignore (Harris.insert baseline k)
        | 1 -> ignore (Harris.remove baseline k)
        | _ -> ignore (Harris.contains baseline k))
      queries
  in
  let run_queries_weak () =
    let fs =
      List.map
        (fun k ->
          match k mod 5 with
          | 0 -> WL.insert h k
          | 1 -> WL.remove h k
          | _ -> WL.contains h k)
        queries
    in
    WL.flush h;
    List.iter (fun f -> ignore (Future.force f)) fs
  in
  let (), t_base_q = time run_queries_baseline in
  let (), t_weak_q = time run_queries_weak in
  Printf.printf "mixed batch of %d operations:\n" n_queries;
  Printf.printf "  lock-free  %.1f ms\n" (t_base_q *. 1000.0);
  Printf.printf "  weak-FL    %.1f ms  speedup x%.1f\n" (t_weak_q *. 1000.0)
    (t_base_q /. t_weak_q);
  let same = Harris.to_list baseline = Harris.to_list (WL.shared wl) in
  Printf.printf "final states agree: %b\n" same;
  exit (if same then 0 else 1)
