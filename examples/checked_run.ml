(* A self-verifying concurrent run.

   Run with:  dune exec examples/checked_run.exe -- [seed]

   Two domains hammer one weak-FL stack with futures held pending at
   random; every operation is recorded with its four timestamps (creation
   invocation/response, evaluation invocation/response). Afterwards the
   history is printed, checked against all three futures-linearizability
   conditions, and — when weak-FL holds — a witness linearization is
   displayed. This makes the difference between the conditions tangible:
   the same execution is usually weak-FL but not strong-FL. *)

module Future = Futures.Future
module H = Lin.History
module SSpec = Lin.Spec.Stack_spec
module C = Lin.Checker.Make (SSpec)

let () =
  let seed =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 42
  in
  let stack = Fl.Weak_stack.create () in
  let clock = H.clock () in
  let logs = [| H.log (); H.log () |] in
  let barrier = Sync.Barrier.create 2 in

  let worker i () =
    let h = Fl.Weak_stack.handle stack in
    let rng = Workload.Rng.create ~seed ~stream:i in
    let pending = ref [] in
    let flush () =
      List.iter (fun k -> k ()) !pending;
      pending := []
    in
    Sync.Barrier.wait barrier;
    for n = 1 to 4 do
      (if Workload.Rng.bool rng then begin
         let v = (i * 10) + n in
         let _, complete =
           H.recorded_call logs.(i) clock ~thread:i ~obj:0 (fun () ->
               Fl.Weak_stack.push h v)
         in
         pending := (fun () -> ignore (complete (fun () -> SSpec.Push v)))
                    :: !pending
       end
       else
         let _, complete =
           H.recorded_call logs.(i) clock ~thread:i ~obj:0 (fun () ->
               Fl.Weak_stack.pop h)
         in
         pending := (fun () -> ignore (complete (fun r -> SSpec.Pop r)))
                    :: !pending);
      if Workload.Rng.below rng 2 = 0 then flush ()
    done;
    flush ();
    Fl.Weak_stack.flush h
  in
  let ds = List.init 2 (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join ds;

  let history = H.merge (Array.to_list logs) in
  Format.printf "Recorded history (%d operations):@."
    (Array.length history);
  Format.printf "%a@." C.pp_history history;

  List.iter
    (fun cond ->
      Format.printf "  %-42s %b@."
        ("satisfies " ^ Lin.Order.condition_name cond ^ " futures \
          linearizability:")
        (C.check cond history))
    [ Lin.Order.Strong; Lin.Order.Medium; Lin.Order.Weak ];

  (match C.linearization Lin.Order.Weak history with
  | Some order ->
      Format.printf "@.One legal weak-FL linearization:@.  ";
      List.iter
        (fun i ->
          Format.printf "%a; " SSpec.pp_op history.(i).H.op)
        order;
      Format.printf "@."
  | None -> Format.printf "@.No weak-FL linearization — BUG!@.");

  Format.printf "@.Stack contents at quiescence (top first): %s@."
    (String.concat " "
       (List.map string_of_int
          (Lockfree.Treiber_stack.to_list (Fl.Weak_stack.shared stack))))
