(* Elimination in action: how many operations never touch shared memory?

   Run with:  dune exec examples/elimination_demo.exe -- [ops] [slack]

   On a balanced push/pop workload the weak-FL stack pairs complementary
   pending operations at invocation time; with a slack window of X, almost
   all operations cancel locally. This demo counts the CAS operations the
   shared Treiber stack actually sees per high-level operation, for the
   weak-FL stack (elimination on and off), the medium-FL stack, and the
   plain lock-free stack, across slack levels. *)

module Future = Futures.Future
module T = Lockfree.Treiber_stack

let run_weak ~elimination ~ops ~slack =
  let s = Fl.Weak_stack.create ~elimination () in
  let h = Fl.Weak_stack.handle s in
  let sl = Fl.Slack.create slack in
  let rng = Workload.Rng.create ~seed:99 ~stream:0 in
  for n = 1 to ops do
    if Workload.Rng.bool rng then begin
      let f = Fl.Weak_stack.push h n in
      Fl.Slack.note sl (fun () -> Future.force f)
    end
    else
      let f = Fl.Weak_stack.pop h in
      Fl.Slack.note sl (fun () -> ignore (Future.force f))
  done;
  Fl.Slack.drain sl;
  Fl.Weak_stack.flush h;
  T.cas_count (Fl.Weak_stack.shared s)

let run_medium ~ops ~slack =
  let s = Fl.Medium_stack.create () in
  let h = Fl.Medium_stack.handle s in
  let sl = Fl.Slack.create slack in
  let rng = Workload.Rng.create ~seed:99 ~stream:0 in
  for n = 1 to ops do
    if Workload.Rng.bool rng then begin
      let f = Fl.Medium_stack.push h n in
      Fl.Slack.note sl (fun () -> Future.force f)
    end
    else
      let f = Fl.Medium_stack.pop h in
      Fl.Slack.note sl (fun () -> ignore (Future.force f))
  done;
  Fl.Slack.drain sl;
  Fl.Medium_stack.flush h;
  T.cas_count (Fl.Medium_stack.shared s)

let run_lockfree ~ops =
  let s = T.create () in
  let rng = Workload.Rng.create ~seed:99 ~stream:0 in
  for n = 1 to ops do
    if Workload.Rng.bool rng then T.push s n else ignore (T.pop s)
  done;
  T.cas_count s

let () =
  let arg n default =
    if Array.length Sys.argv > n then int_of_string Sys.argv.(n) else default
  in
  let ops = arg 1 100_000 in
  let default_slack = arg 2 0 in
  let slacks =
    if default_slack > 0 then [ default_slack ] else [ 1; 10; 20; 100 ]
  in
  Printf.printf "%d operations, 50%% push / 50%% pop, single thread\n\n" ops;
  Printf.printf "shared-stack CAS per operation (lower = more elimination):\n";
  Printf.printf "  %-8s %12s %12s %12s %12s\n" "slack" "lockfree" "weak"
    "weak-noelim" "medium";
  let lf = float_of_int (run_lockfree ~ops) /. float_of_int ops in
  List.iter
    (fun slack ->
      let w =
        float_of_int (run_weak ~elimination:true ~ops ~slack)
        /. float_of_int ops
      in
      let wn =
        float_of_int (run_weak ~elimination:false ~ops ~slack)
        /. float_of_int ops
      in
      let m = float_of_int (run_medium ~ops ~slack) /. float_of_int ops in
      Printf.printf "  %-8d %12.3f %12.3f %12.3f %12.3f\n" slack lf w wn m)
    slacks;
  print_endline
    "\nWith elimination and slack > 1, the weak stack's CAS rate collapses:\n\
     most push/pop pairs cancel in the thread's local pending list and\n\
     never reach shared memory (Kogan & Herlihy §4.1)."
