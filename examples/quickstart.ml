(* Quickstart: a tour of the futures-based data structure API.

   Run with:  dune exec examples/quickstart.exe

   The library implements the three data structures of Kogan & Herlihy,
   "The Future(s) of Shared Data Structures" (PODC 2014), each in three
   flavours — weak, medium and strong futures linearizability — next to
   the classic lock-free baselines. Operations return futures; evaluating
   ("forcing") a future makes the operation and its pending siblings take
   effect, enabling combining and elimination. *)

module Future = Futures.Future

let section title =
  Printf.printf "\n--- %s ---\n" title

let () =
  section "1. A weak-FL stack: combining";
  (* Shared structure + one handle per domain. *)
  let stack = Fl.Weak_stack.create () in
  let h = Fl.Weak_stack.handle stack in
  (* Invocations return immediately with futures; nothing touches the
     shared stack yet. *)
  let f1 = Fl.Weak_stack.push h 1 in
  let f2 = Fl.Weak_stack.push h 2 in
  let f3 = Fl.Weak_stack.push h 3 in
  Printf.printf "pending operations: %d (shared stack CAS so far: %d)\n"
    (Fl.Weak_stack.pending_count h)
    (Lockfree.Treiber_stack.cas_count (Fl.Weak_stack.shared stack));
  (* Forcing any one future flushes them all — with a single CAS. *)
  Future.force f1;
  Printf.printf "after one force: pending=%d, ready=(%b,%b,%b), CAS=%d\n"
    (Fl.Weak_stack.pending_count h)
    (Future.is_ready f1) (Future.is_ready f2) (Future.is_ready f3)
    (Lockfree.Treiber_stack.cas_count (Fl.Weak_stack.shared stack));

  section "2. Elimination: push and pop cancel without synchronization";
  let p = Fl.Weak_stack.pop h in
  (* p is pending; the next push pairs with it immediately. *)
  let q = Fl.Weak_stack.push h 42 in
  Printf.printf "pop got %s, push done=%b — no shared-memory traffic\n"
    (match Future.force p with Some v -> string_of_int v | None -> "empty")
    (Future.is_ready q);

  section "3. The slack policy";
  (* The paper's benchmarks allow up to X pending operations before
     forcing them all; Slack packages that policy. *)
  let slack = Fl.Slack.create 4 in
  for i = 10 to 19 do
    let f = Fl.Weak_stack.push h i in
    Fl.Slack.note slack (fun () -> Future.force f)
  done;
  Fl.Slack.drain slack;
  Printf.printf "stack contents (top first): %s\n"
    (String.concat " "
       (List.map string_of_int
          (Lockfree.Treiber_stack.to_list (Fl.Weak_stack.shared stack))));

  section "4. Medium-FL queue: program order is preserved";
  let queue = Fl.Medium_queue.create () in
  let qh = Fl.Medium_queue.handle queue in
  let _ = Fl.Medium_queue.enqueue qh 100 in
  let _ = Fl.Medium_queue.enqueue qh 200 in
  let d = Fl.Medium_queue.dequeue qh in
  (* Under medium-FL my own operations take effect in order, so the
     dequeue is guaranteed to see my first enqueue (paper, Figure 2). *)
  Printf.printf "dequeue returned %s (guaranteed 100 under medium-FL)\n"
    (match Future.force d with Some v -> string_of_int v | None -> "empty");

  section "5. Strong-FL linked list: delegation";
  let module SL = Fl.Strong_list.Make (struct
    type t = int

    let compare = Int.compare
  end) in
  let list = SL.create () in
  let inserts = List.init 10 (fun i -> SL.insert list (i * 7 mod 6)) in
  (* Forcing one future drains the shared pending queue: this thread
     evaluates everybody's operations in one sorted traversal. *)
  let results = List.map Future.force inserts in
  Printf.printf "inserted %d distinct keys out of 10 submitted\n"
    (List.length (List.filter Fun.id results));
  Printf.printf "list contents: %s\n"
    (String.concat " " (List.map string_of_int (SL.to_list list)));

  section "6. Futures from another domain";
  let other =
    Domain.spawn (fun () ->
        let hh = Fl.Weak_stack.handle stack in
        let f = Fl.Weak_stack.pop hh in
        Future.force f)
  in
  (match Domain.join other with
  | Some v -> Printf.printf "another domain popped %d\n" v
  | None -> Printf.printf "another domain found the stack empty\n");
  print_endline "\ndone."
