(* Producer/consumer pipeline over a medium-FL queue.

   Run with:  dune exec examples/producer_consumer.exe -- [producers]
              [consumers] [items-per-producer] [slack]

   Producers batch their enqueues under a slack bound — the combining
   optimization splices whole chains into the shared Michael–Scott queue
   with two CASes — while consumers batch dequeues symmetrically. The
   example reports end-to-end throughput and verifies that every produced
   item is consumed exactly once. *)

module Future = Futures.Future

let () =
  let arg n default =
    if Array.length Sys.argv > n then int_of_string Sys.argv.(n) else default
  in
  let producers = arg 1 2 in
  let consumers = arg 2 2 in
  let per_producer = arg 3 50_000 in
  let slack = arg 4 50 in
  let total = producers * per_producer in
  Printf.printf
    "pipeline: %d producers x %d items -> %d consumers (slack %d)\n%!"
    producers per_producer consumers slack;

  let queue = Fl.Medium_queue.create () in
  let consumed = Atomic.make 0 in
  let consumed_sum = Atomic.make 0 in
  let done_producing = Atomic.make 0 in

  let producer p () =
    let h = Fl.Medium_queue.handle queue in
    let sl = Fl.Slack.create slack in
    for i = 1 to per_producer do
      let item = (p * per_producer) + i in
      let f = Fl.Medium_queue.enqueue h item in
      Fl.Slack.note sl (fun () -> Future.force f)
    done;
    Fl.Slack.drain sl;
    Fl.Medium_queue.flush h;
    Atomic.incr done_producing
  in

  let consumer () =
    let h = Fl.Medium_queue.handle queue in
    let sl = Fl.Slack.create slack in
    let stop = ref false in
    while not !stop do
      let f = Fl.Medium_queue.dequeue h in
      Fl.Slack.note sl (fun () ->
          match Future.force f with
          | Some v ->
              Atomic.incr consumed;
              ignore (Atomic.fetch_and_add consumed_sum v)
          | None ->
              (* Empty: if all producers are finished and the queue has
                 been drained, we are done; otherwise yield and retry. *)
              if
                Atomic.get done_producing = producers
                && Atomic.get consumed = total
              then stop := true
              else Domain.cpu_relax ());
      if Fl.Slack.pending sl = 0 && Atomic.get consumed >= total then
        stop := true
    done;
    Fl.Slack.drain sl;
    Fl.Medium_queue.flush h
  in

  let t0 = Unix.gettimeofday () in
  let ds =
    List.init producers (fun p -> Domain.spawn (producer p))
    @ List.init consumers (fun _ -> Domain.spawn consumer)
  in
  List.iter Domain.join ds;
  let dt = Unix.gettimeofday () -. t0 in

  let expected_sum = total * (total + 1) / 2 in
  Printf.printf "consumed %d/%d items in %.3fs (%.0f items/s)\n"
    (Atomic.get consumed) total dt
    (float_of_int total /. dt);
  Printf.printf "checksum: %s\n"
    (if Atomic.get consumed_sum = expected_sum then "OK"
     else
       Printf.sprintf "MISMATCH (%d <> %d)" (Atomic.get consumed_sum)
         expected_sum);
  exit (if Atomic.get consumed_sum = expected_sum then 0 else 1)
