(* A shared memoization cache on the weak-FL map (extension).

   Run with:  dune exec examples/memo_cache.exe -- [workers] [requests]

   Several domains answer "requests" for an expensive pure function.
   Each worker batches its cache lookups with a slack window: misses are
   computed and inserted (bind-once semantics makes concurrent inserts of
   the same key race harmlessly — one binding wins, the rest observe
   [false]). The batch of lookups costs a single traversal of the shared
   list per flush. *)

module Future = Futures.Future

module Int_key = struct
  type t = int

  let compare = Int.compare
end

module WM = Fl.Weak_map.Make (Int_key)
module KV = Lockfree.Harris_kv.Make (Int_key)

(* The "expensive" function: a silly iterated hash, ~microseconds. *)
let expensive n =
  let x = ref n in
  for _ = 1 to 5_000 do
    x := (!x * 1103515245) + 12345
  done;
  !x land 0xFFFF

let () =
  let arg n default =
    if Array.length Sys.argv > n then int_of_string Sys.argv.(n) else default
  in
  let workers = arg 1 4 in
  let requests = arg 2 5_000 in
  let key_space = 200 in
  let cache = WM.create () in
  let computed = Atomic.make 0 in
  let served = Atomic.make 0 in

  let worker i () =
    let h = WM.handle cache in
    let rng = Workload.Rng.create ~seed:2014 ~stream:i in
    let sl = Fl.Slack.create 16 in
    for _ = 1 to requests do
      let key = Workload.Rng.below rng key_space in
      let lookup = WM.find h key in
      Fl.Slack.note sl (fun () ->
          match Future.force lookup with
          | Some _ -> Atomic.incr served
          | None ->
              (* Miss: compute and publish. The insert joins the next
                 batch; we do not even need to force it. *)
              let v = expensive key in
              Atomic.incr computed;
              Atomic.incr served;
              ignore (WM.insert h key v))
    done;
    Fl.Slack.drain sl;
    WM.flush h
  in

  let t0 = Unix.gettimeofday () in
  let ds = List.init workers (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join ds;
  let dt = Unix.gettimeofday () -. t0 in

  let total = workers * requests in
  Printf.printf "%d requests served in %.3fs (%.0f req/s)\n"
    (Atomic.get served) dt
    (float_of_int total /. dt);
  Printf.printf "distinct keys cached: %d / %d\n"
    (KV.size (WM.shared cache))
    key_space;
  Printf.printf
    "computations: %d (duplicates from racing misses: %d, %.1f%%)\n"
    (Atomic.get computed)
    (Atomic.get computed - KV.size (WM.shared cache))
    (100.0
    *. float_of_int (Atomic.get computed - KV.size (WM.shared cache))
    /. float_of_int (max 1 (Atomic.get computed)));
  (* Sanity: every cached value matches the function. *)
  let ok =
    List.for_all
      (fun (k, v) -> v = expensive k)
      (KV.bindings (WM.shared cache))
  in
  Printf.printf "cache consistent: %b\n" ok;
  exit (if ok && Atomic.get served = total then 0 else 1)
